#include "core/od_matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/bit_array.h"
#include "common/env_override.h"
#include "common/kernels/kernels.h"
#include "common/parallel.h"
#include "common/require.h"
#include "core/estimator.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace vlm::core {

namespace {

// Decode metrics. The DecodeStats a caller receives is a per-run view
// over exactly these atoms: every field is incremented here and added to
// the registry at the same site, so a registry delta across one decode
// equals the struct (a test pins this). The handles register together on
// the first decode, keeping the exported key set independent of path,
// worker count, and tile size.
struct DecodeMetrics {
  obs::Counter& runs;
  obs::Counter& pairs;
  obs::Counter& words_scanned;
  obs::Counter& pairs_pruned;    // pruned path: pairs the sample skipped
  obs::Counter& pairs_survived;  // pruned path: pairs the exact sweep ran
  obs::Counter& pairs_saturated;  // pairs whose MLE hit the saturation floor
  obs::Gauge& workers;
  obs::Gauge& tile_words;
  obs::Gauge& dram_passes_saved;
  obs::Info& kernel_isa;
  obs::Info& path;
  obs::Histogram& total;       // whole estimate_od_matrix call
  obs::Histogram& prune;       // pruned path: the sampled-union skip stage
  obs::Histogram& tile_sweep;  // blocked path: the batched zero-count sweep
  obs::Histogram& estimate;    // Eq. 5 / interval math over the pair list
};

DecodeMetrics& decode_metrics() {
  static DecodeMetrics* metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::global();
    return new DecodeMetrics{r.counter("decode/runs"),
                             r.counter("decode/pairs"),
                             r.counter("decode/words_scanned"),
                             r.counter("decode/pairs_pruned"),
                             r.counter("decode/pairs_survived"),
                             r.counter("decode/pairs_saturated"),
                             r.gauge("decode/workers"),
                             r.gauge("decode/tile_words"),
                             r.gauge("decode/dram_passes_saved"),
                             r.info("kernel/isa"),
                             r.info("decode/path"),
                             obs::phase("decode/total"),
                             obs::phase("decode/prune"),
                             obs::phase("decode/tile_sweep"),
                             obs::phase("decode/estimate")};
  }();
  return *metrics;
}

const char* mode_name(DecodeMode mode) {
  switch (mode) {
    case DecodeMode::kPairwise:
      return "pairwise";
    case DecodeMode::kBlocked:
      return "blocked";
    case DecodeMode::kPruned:
      return "pruned";
    case DecodeMode::kAuto:
      return "auto";
  }
  return "unknown";
}

// VLM_DECODE=pairwise|blocked|pruned|auto overrides the caller's mode,
// exactly like VLM_KERNELS overrides ISA selection: parsed once,
// warn-and-keep on an unrecognized value so a stale export degrades
// loudly instead of crashing a fleet.
DecodeMode apply_env_override(DecodeMode mode) {
  static constexpr common::EnvEnumChoice kChoices[] = {
      {"pairwise", static_cast<int>(DecodeMode::kPairwise)},
      {"blocked", static_cast<int>(DecodeMode::kBlocked)},
      {"pruned", static_cast<int>(DecodeMode::kPruned)},
      {"auto", static_cast<int>(DecodeMode::kAuto)}};
  static const int parsed = common::parse_env_enum("VLM_DECODE", kChoices, -1);
  return parsed < 0 ? mode : static_cast<DecodeMode>(parsed);
}

// Sampled-union skip rule for one pair. Returns true when the pair can
// be skipped: even an upper confidence bound on the OR zero fraction —
// taken over a strided sample of the larger array — implies an overlap
// estimate at or below min_volume. Every precondition failure (saturated
// arrays, sub-word sizes, m_y <= s) returns false, i.e. keeps the pair
// for the exact sweep, so the rule only ever errs toward measuring.
bool prune_pair(const RsuState& first, const RsuState& second,
                const PairEstimator& point_estimator, const PruneOptions& prune,
                const common::kernels::KernelTable& table,
                std::size_t* words_sampled) {
  const bool first_is_small = first.array_size() <= second.array_size();
  const RsuState& small = first_is_small ? first : second;
  const RsuState& large = first_is_small ? second : first;
  const std::size_t m_x = small.array_size();
  const std::size_t m_y = large.array_size();
  // Conservative keeps: anything the closed-form bound below cannot
  // describe goes to the exact sweep (which also owns the error
  // messages for genuinely incompatible sizes).
  if (m_x % common::BitArray::kWordBits != 0 || m_y % m_x != 0) return false;
  if (m_y <= point_estimator.s() || m_y <= 1) return false;
  const std::size_t zeros_small = small.zero_count();
  const std::size_t zeros_large = large.zero_count();
  if (zeros_small == 0 || zeros_large == 0) return false;  // saturated

  const std::span<const std::uint64_t> sw = small.bits().words();
  const std::span<const std::uint64_t> lw = large.bits().words();
  const std::size_t ones_sampled = table.or_popcount_sampled(
      lw.data(), lw.size(), sw.data(), sw.size(), prune.sample_stride);
  const std::size_t n_sampled_words =
      common::kernels::sampled_word_count(lw.size(), prune.sample_stride);
  *words_sampled = n_sampled_words;
  const double n_bits =
      static_cast<double>(n_sampled_words) * common::BitArray::kWordBits;
  const double p_hat =
      static_cast<double>(n_sampled_words * common::BitArray::kWordBits -
                          ones_sampled) /
      n_bits;

  // One-sided upper bound on the true OR zero fraction v_c. The sample
  // is n_bits of N = m_y bits without replacement, so the binomial
  // standard error carries the finite-population correction
  // (1/n − 1/N); the additive z²/n term keeps the bound positive and
  // honest in the p_hat ≈ 0 regime where the normal approximation's se
  // collapses (a Wilson-style widening). See DESIGN.md for the math.
  const double total_bits = static_cast<double>(m_y);
  const double fpc = 1.0 / n_bits - 1.0 / total_bits;
  const double se = std::sqrt(std::max(0.0, p_hat * (1.0 - p_hat) * fpc));
  const double v_c_ub =
      std::min(1.0, p_hat + prune.z_prune * se +
                        prune.z_prune * prune.z_prune / n_bits);
  if (!(v_c_ub > 0.0)) return false;

  // Eq. 5 with the bounded v_c: monotone increasing in v_c (the
  // denominator is positive), so an upper bound on v_c is an upper
  // bound on the overlap estimate.
  const double v_x =
      static_cast<double>(zeros_small) / static_cast<double>(m_x);
  const double v_y = static_cast<double>(zeros_large) / total_bits;
  const double n_c_ub =
      (std::log(v_c_ub) - std::log(v_x) - std::log(v_y)) /
      point_estimator.log_ratio_denominator(m_y);
  return n_c_ub <= prune.min_volume;
}

}  // namespace

OdMatrix::OdMatrix(std::size_t rsu_count)
    : k_(rsu_count), cells_(rsu_count * (rsu_count - 1) / 2) {
  VLM_REQUIRE(rsu_count >= 2, "an OD matrix needs at least two RSUs");
  measured_pairs_ = cells_.size();
}

OdMatrix OdMatrix::for_survivors(
    std::size_t rsu_count,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> survivors) {
  OdMatrix matrix(rsu_count);
  matrix.measured_pairs_ = survivors.size();
  const std::size_t total_pairs = matrix.cells_.size();
  if (survivors.size() * 4 >= total_pairs) {
    // Dense fallback: at this density the CSR index costs more than the
    // zero-filled cells it would save. Keep the triangle and mark the
    // measured cells.
    matrix.measured_.assign(total_pairs, 0);
    for (const auto& [a, b] : survivors) {
      matrix.measured_[matrix.triangle_index(a, b)] = 1;
    }
    return matrix;
  }
  // CSR over the survivor list (already sorted by (row, col) — the
  // prune stage compacts in pair order). Survivor slot p backs cells_[p],
  // so the exact sweep's pair order and the cell order coincide.
  matrix.cells_.assign(survivors.size(), EstimateInterval{});
  matrix.cells_.shrink_to_fit();
  matrix.row_offsets_.assign(rsu_count + 1, 0);
  matrix.cols_.reserve(survivors.size());
  std::uint32_t row = 0;
  for (const auto& [a, b] : survivors) {
    VLM_REQUIRE(a < b && b < rsu_count && a >= row,
                "survivor list must be sorted upper-triangle pairs");
    while (row < a) {
      matrix.row_offsets_[++row] =
          static_cast<std::uint32_t>(matrix.cols_.size());
    }
    matrix.cols_.push_back(b);
  }
  while (row < rsu_count) {
    matrix.row_offsets_[++row] =
        static_cast<std::uint32_t>(matrix.cols_.size());
  }
  return matrix;
}

std::size_t OdMatrix::sparse_slot(std::size_t lo, std::size_t hi) const {
  const auto begin = cols_.begin() + row_offsets_[lo];
  const auto end = cols_.begin() + row_offsets_[lo + 1];
  const auto it = std::lower_bound(begin, end, static_cast<std::uint32_t>(hi));
  if (it == end || *it != hi) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(it - cols_.begin());
}

EstimateInterval& OdMatrix::cell(std::size_t a, std::size_t b) {
  if (sparse()) {
    const std::size_t lo = a < b ? a : b;
    const std::size_t hi = a < b ? b : a;
    const std::size_t slot = sparse_slot(lo, hi);
    VLM_REQUIRE(slot != static_cast<std::size_t>(-1),
                "cannot write a pruned-away OD matrix cell");
    return cells_[slot];
  }
  return const_cast<EstimateInterval&>(
      static_cast<const OdMatrix*>(this)->at(a, b));
}

const EstimateInterval& OdMatrix::at(std::size_t a, std::size_t b) const {
  VLM_REQUIRE(a < k_ && b < k_ && a != b,
              "OD matrix lookup needs two distinct RSU positions");
  const std::size_t lo = a < b ? a : b;
  const std::size_t hi = a < b ? b : a;
  if (sparse()) {
    const std::size_t slot = sparse_slot(lo, hi);
    if (slot == static_cast<std::size_t>(-1)) {
      // Pruned away: the estimate is zero by construction. A shared
      // default-constructed interval (n_c_hat = 0, zero-width bounds) is
      // exactly that reading.
      static const EstimateInterval kPrunedZero{};
      return kPrunedZero;
    }
    return cells_[slot];
  }
  return cells_[triangle_index(lo, hi)];
}

bool OdMatrix::measured(std::size_t a, std::size_t b) const {
  VLM_REQUIRE(a < k_ && b < k_ && a != b,
              "OD matrix lookup needs two distinct RSU positions");
  const std::size_t lo = a < b ? a : b;
  const std::size_t hi = a < b ? b : a;
  if (sparse()) return sparse_slot(lo, hi) != static_cast<std::size_t>(-1);
  if (!measured_.empty()) return measured_[triangle_index(lo, hi)] != 0;
  return true;
}

double OdMatrix::total_estimated_common() const {
  // Sparse storage holds exactly the survivors, the dense layouts hold
  // zeros in unmeasured cells — either way the sum over cells_ is the
  // matrix total.
  double total = 0.0;
  for (const EstimateInterval& e : cells_) total += e.n_c_hat;
  return total;
}

OdMatrix estimate_od_matrix(std::span<const RsuState> states, std::uint32_t s,
                            double z, const DecodeOptions& options,
                            DecodeStats* stats) {
  DecodeMetrics& metrics = decode_metrics();
  obs::Span total_span(metrics.total);
  const std::uint64_t pool_before = common::WorkerPool::instance().dispatch_count();
  const std::size_t k = states.size();
  VLM_REQUIRE(k >= 2, "an OD matrix needs at least two RSUs");
  const IntervalEstimator estimator(s, z);
  const unsigned used =
      options.workers == 0 ? common::default_worker_count() : options.workers;

  DecodeMode mode = apply_env_override(options.mode);
  if (mode == DecodeMode::kAuto) {
    // One pair has nothing to block over; three or more arrays is where
    // tile reuse starts paying. Pruning stays opt-in — it changes
    // skipped pairs' cells, so kAuto never routes there.
    mode = k >= 3 ? DecodeMode::kBlocked : DecodeMode::kPairwise;
  }

  // Flatten the upper triangle into an index list so the pair loop can be
  // sliced across workers. Pair p covers exactly one cell, and every
  // worker writes only its own pairs' cells (plus its own slot of the
  // per-pair word counters), so the result is deterministic: identical
  // for any worker count and any scheduling.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(k * (k - 1) / 2);
  for (std::uint32_t a = 0; a < k; ++a) {
    for (std::uint32_t b = a + 1; b < k; ++b) pairs.emplace_back(a, b);
  }

  // Pruned path, stage 1: per-pair skip decisions over a strided sample
  // of each pair's OR zero fraction. Decisions are computed
  // independently per pair into keep[p] and compacted serially, so the
  // survivor list — and therefore the whole decode — is identical for
  // every worker count. Compaction preserves (a, b) order, which keeps
  // the batch sweep's anchor groups contiguous.
  double prune_seconds = 0.0;
  std::size_t prune_words = 0;
  std::size_t pairs_pruned = 0;
  if (mode == DecodeMode::kPruned) {
    obs::Span prune_span(metrics.prune);
    const PairEstimator point_estimator(s);
    const common::kernels::KernelTable& table = common::kernels::active();
    std::vector<std::uint8_t> keep(pairs.size(), 0);
    std::vector<std::size_t> sampled(pairs.size(), 0);
    common::parallel_for(pairs.size(), used, [&](std::size_t p) {
      const auto [a, b] = pairs[p];
      keep[p] = prune_pair(states[a], states[b], point_estimator,
                           options.prune, table, &sampled[p])
                    ? 0
                    : 1;
    });
    std::size_t kept = 0;
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      prune_words += sampled[p];
      if (keep[p] != 0) pairs[kept++] = pairs[p];
    }
    pairs_pruned = pairs.size() - kept;
    pairs.resize(kept);
    prune_seconds = prune_span.finish();
  }

  OdMatrix matrix = mode == DecodeMode::kPruned
                        ? OdMatrix::for_survivors(k, pairs)
                        : OdMatrix(k);

  std::vector<std::size_t> words_per_pair(pairs.size(), 0);
  std::vector<std::uint8_t> pair_saturated(pairs.size(), 0);
  common::BatchDecodeStats batch_stats;
  double sweep_seconds = 0.0;
  double estimate_seconds = 0.0;
  if (mode == DecodeMode::kBlocked || mode == DecodeMode::kPruned) {
    // Measure the pair list's zero counts with the cache-blocked batch
    // sweep, then map them through the identical Eq. 5 / interval math
    // the pairwise path uses. Both stages are deterministic, so so is
    // the composition — and because the batch sweep's integer partials
    // are exact for any pair subset, a survivor's counts (and therefore
    // its estimate) are bit-identical to the unpruned blocked decode.
    std::vector<const common::BitArray*> arrays;
    arrays.reserve(k);
    for (const RsuState& state : states) arrays.push_back(&state.bits());
    common::BatchDecodeOptions batch_options;
    batch_options.tile_words = options.tile_words;
    batch_options.workers = used;
    std::vector<common::JointZeroCounts> counts;
    {
      obs::Span sweep_span(metrics.tile_sweep);
      counts = common::joint_zero_counts_batch(arrays, pairs, batch_options,
                                               &batch_stats);
      sweep_seconds = sweep_span.finish();
    }
    obs::Span estimate_span(metrics.estimate);
    common::parallel_for(pairs.size(), used, [&](std::size_t p) {
      const auto [a, b] = pairs[p];
      PairEstimate point;
      matrix.cell(a, b) = estimator.from_counts(
          counts[p], static_cast<double>(states[a].counter()),
          static_cast<double>(states[b].counter()), &point);
      words_per_pair[p] = point.words_scanned;
      pair_saturated[p] = point.saturated ? 1 : 0;
    });
    estimate_seconds = estimate_span.finish();
  } else {
    obs::Span estimate_span(metrics.estimate);
    common::parallel_for(pairs.size(), used, [&](std::size_t p) {
      const auto [a, b] = pairs[p];
      PairEstimate point;
      matrix.cell(a, b) = estimator.estimate(states[a], states[b], &point);
      words_per_pair[p] = point.words_scanned;
      pair_saturated[p] = point.saturated ? 1 : 0;
    });
    estimate_seconds = estimate_span.finish();
  }

  // Registry and struct are fed from the same values: DecodeStats is the
  // per-run view of what this call just added to the global counters.
  const std::size_t words_scanned =
      prune_words + std::accumulate(words_per_pair.begin(),
                                    words_per_pair.end(), std::size_t{0});
  const std::size_t pairs_saturated = static_cast<std::size_t>(
      std::accumulate(pair_saturated.begin(), pair_saturated.end(),
                      std::size_t{0}));
  metrics.runs.inc();
  metrics.pairs.add(pairs.size());
  metrics.words_scanned.add(words_scanned);
  metrics.pairs_pruned.add(pairs_pruned);
  metrics.pairs_survived.add(mode == DecodeMode::kPruned ? pairs.size() : 0);
  metrics.pairs_saturated.add(pairs_saturated);
  metrics.workers.set(static_cast<double>(used));
  metrics.tile_words.set(static_cast<double>(batch_stats.tile_words));
  metrics.dram_passes_saved.set(
      static_cast<double>(batch_stats.dram_passes_saved));
  metrics.kernel_isa.set(common::kernels::active_name());
  metrics.path.set(mode_name(mode));
  const double wall_seconds = total_span.finish();

  if (stats != nullptr) {
    stats->pairs_decoded = pairs.size();
    stats->pairs_saturated = pairs_saturated;
    stats->words_scanned = words_scanned;
    stats->workers = used;
    stats->kernel_isa = common::kernels::active_name();
    stats->path = mode_name(mode);
    stats->tile_words = batch_stats.tile_words;
    stats->dram_passes_saved = batch_stats.dram_passes_saved;
    stats->pairs_pruned = pairs_pruned;
    stats->pairs_survived = mode == DecodeMode::kPruned ? pairs.size() : 0;
    stats->sample_stride =
        mode == DecodeMode::kPruned ? options.prune.sample_stride : 0;
    stats->prune_seconds = prune_seconds;
    stats->sweep_seconds = sweep_seconds;
    stats->estimate_seconds = estimate_seconds;
    stats->storage = matrix.sparse() ? "sparse" : "dense";
    const common::WorkerPool& pool = common::WorkerPool::instance();
    stats->pool_lifetime_dispatches = pool.dispatch_count();
    stats->pool_dispatches = stats->pool_lifetime_dispatches - pool_before;
    stats->pool_threads = pool.thread_count();
    stats->wall_seconds = wall_seconds;
  }
  return matrix;
}

OdMatrix estimate_od_matrix(std::span<const RsuState> states, std::uint32_t s,
                            double z, unsigned workers, DecodeStats* stats) {
  DecodeOptions options;
  options.workers = workers;
  return estimate_od_matrix(states, s, z, options, stats);
}

}  // namespace vlm::core
