#include "core/od_matrix.h"

#include <numeric>

#include "common/bit_array.h"
#include "common/env_override.h"
#include "common/kernels/kernels.h"
#include "common/parallel.h"
#include "common/require.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace vlm::core {

namespace {

// Decode metrics. The DecodeStats a caller receives is a per-run view
// over exactly these atoms: every field is incremented here and added to
// the registry at the same site, so a registry delta across one decode
// equals the struct (a test pins this). The handles register together on
// the first decode, keeping the exported key set independent of path,
// worker count, and tile size.
struct DecodeMetrics {
  obs::Counter& runs;
  obs::Counter& pairs;
  obs::Counter& words_scanned;
  obs::Gauge& workers;
  obs::Gauge& tile_words;
  obs::Gauge& dram_passes_saved;
  obs::Info& kernel_isa;
  obs::Info& path;
  obs::Histogram& total;       // whole estimate_od_matrix call
  obs::Histogram& tile_sweep;  // blocked path: the batched zero-count sweep
  obs::Histogram& estimate;    // Eq. 5 / interval math over the pair list
};

DecodeMetrics& decode_metrics() {
  static DecodeMetrics* metrics = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::global();
    return new DecodeMetrics{r.counter("decode/runs"),
                             r.counter("decode/pairs"),
                             r.counter("decode/words_scanned"),
                             r.gauge("decode/workers"),
                             r.gauge("decode/tile_words"),
                             r.gauge("decode/dram_passes_saved"),
                             r.info("kernel/isa"),
                             r.info("decode/path"),
                             obs::phase("decode/total"),
                             obs::phase("decode/tile_sweep"),
                             obs::phase("decode/estimate")};
  }();
  return *metrics;
}

const char* mode_name(DecodeMode mode) {
  switch (mode) {
    case DecodeMode::kPairwise:
      return "pairwise";
    case DecodeMode::kBlocked:
      return "blocked";
    case DecodeMode::kAuto:
      return "auto";
  }
  return "unknown";
}

// VLM_DECODE=pairwise|blocked|auto overrides the caller's mode, exactly
// like VLM_KERNELS overrides ISA selection: parsed once, warn-and-keep
// on an unrecognized value so a stale export degrades loudly instead of
// crashing a fleet.
DecodeMode apply_env_override(DecodeMode mode) {
  static constexpr common::EnvEnumChoice kChoices[] = {
      {"pairwise", static_cast<int>(DecodeMode::kPairwise)},
      {"blocked", static_cast<int>(DecodeMode::kBlocked)},
      {"auto", static_cast<int>(DecodeMode::kAuto)}};
  static const int parsed = common::parse_env_enum("VLM_DECODE", kChoices, -1);
  return parsed < 0 ? mode : static_cast<DecodeMode>(parsed);
}

}  // namespace

OdMatrix::OdMatrix(std::size_t rsu_count)
    : k_(rsu_count), cells_(rsu_count * (rsu_count - 1) / 2) {
  VLM_REQUIRE(rsu_count >= 2, "an OD matrix needs at least two RSUs");
}

EstimateInterval& OdMatrix::cell(std::size_t a, std::size_t b) {
  return const_cast<EstimateInterval&>(
      static_cast<const OdMatrix*>(this)->at(a, b));
}

const EstimateInterval& OdMatrix::at(std::size_t a, std::size_t b) const {
  VLM_REQUIRE(a < k_ && b < k_ && a != b,
              "OD matrix lookup needs two distinct RSU positions");
  const std::size_t lo = a < b ? a : b;
  const std::size_t hi = a < b ? b : a;
  // Row-major upper triangle: offset(lo) = lo*k - lo(lo+1)/2 relative
  // to column lo+1.
  const std::size_t row_start = lo * k_ - lo * (lo + 1) / 2;
  return cells_[row_start + (hi - lo - 1)];
}

double OdMatrix::total_estimated_common() const {
  double total = 0.0;
  for (const EstimateInterval& e : cells_) total += e.n_c_hat;
  return total;
}

OdMatrix estimate_od_matrix(std::span<const RsuState> states, std::uint32_t s,
                            double z, const DecodeOptions& options,
                            DecodeStats* stats) {
  DecodeMetrics& metrics = decode_metrics();
  obs::Span total_span(metrics.total);
  const std::uint64_t pool_before = common::WorkerPool::instance().dispatch_count();
  OdMatrix matrix(states.size());
  const IntervalEstimator estimator(s, z);
  const unsigned used =
      options.workers == 0 ? common::default_worker_count() : options.workers;

  // Flatten the upper triangle into an index list so the pair loop can be
  // sliced across workers. Pair p covers cells_[p] exactly, and every
  // worker writes only its own pairs' cells (plus its own slot of the
  // per-pair word counters), so the result is deterministic: identical
  // for any worker count and any scheduling.
  const std::size_t k = states.size();
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(k * (k - 1) / 2);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = a + 1; b < k; ++b) pairs.emplace_back(a, b);
  }

  DecodeMode mode = apply_env_override(options.mode);
  if (mode == DecodeMode::kAuto) {
    // One pair has nothing to block over; three or more arrays is where
    // tile reuse starts paying.
    mode = k >= 3 ? DecodeMode::kBlocked : DecodeMode::kPairwise;
  }

  std::vector<std::size_t> words_per_pair(pairs.size(), 0);
  common::BatchDecodeStats batch_stats;
  if (mode == DecodeMode::kBlocked) {
    // Measure every pair's zero counts with the cache-blocked batch
    // sweep, then map them through the identical Eq. 5 / interval math
    // the pairwise path uses. Both stages are deterministic, so so is
    // the composition.
    std::vector<const common::BitArray*> arrays;
    arrays.reserve(k);
    for (const RsuState& state : states) arrays.push_back(&state.bits());
    common::BatchDecodeOptions batch_options;
    batch_options.tile_words = options.tile_words;
    batch_options.workers = used;
    std::vector<common::JointZeroCounts> counts;
    {
      const obs::Span sweep_span(metrics.tile_sweep);
      counts =
          common::joint_zero_counts_batch(arrays, batch_options, &batch_stats);
    }
    const obs::Span estimate_span(metrics.estimate);
    common::parallel_for(pairs.size(), used, [&](std::size_t p) {
      const auto [a, b] = pairs[p];
      PairEstimate point;
      matrix.cell(a, b) = estimator.from_counts(
          counts[p], static_cast<double>(states[a].counter()),
          static_cast<double>(states[b].counter()), &point);
      words_per_pair[p] = point.words_scanned;
    });
  } else {
    const obs::Span estimate_span(metrics.estimate);
    common::parallel_for(pairs.size(), used, [&](std::size_t p) {
      const auto [a, b] = pairs[p];
      PairEstimate point;
      matrix.cell(a, b) = estimator.estimate(states[a], states[b], &point);
      words_per_pair[p] = point.words_scanned;
    });
  }

  // Registry and struct are fed from the same values: DecodeStats is the
  // per-run view of what this call just added to the global counters.
  const std::size_t words_scanned = std::accumulate(
      words_per_pair.begin(), words_per_pair.end(), std::size_t{0});
  metrics.runs.inc();
  metrics.pairs.add(pairs.size());
  metrics.words_scanned.add(words_scanned);
  metrics.workers.set(static_cast<double>(used));
  metrics.tile_words.set(static_cast<double>(batch_stats.tile_words));
  metrics.dram_passes_saved.set(
      static_cast<double>(batch_stats.dram_passes_saved));
  metrics.kernel_isa.set(common::kernels::active_name());
  metrics.path.set(mode_name(mode));
  const double wall_seconds = total_span.finish();

  if (stats != nullptr) {
    stats->pairs_decoded = pairs.size();
    stats->words_scanned = words_scanned;
    stats->workers = used;
    stats->kernel_isa = common::kernels::active_name();
    stats->path = mode_name(mode);
    stats->tile_words = batch_stats.tile_words;
    stats->dram_passes_saved = batch_stats.dram_passes_saved;
    const common::WorkerPool& pool = common::WorkerPool::instance();
    stats->pool_lifetime_dispatches = pool.dispatch_count();
    stats->pool_dispatches = stats->pool_lifetime_dispatches - pool_before;
    stats->pool_threads = pool.thread_count();
    stats->wall_seconds = wall_seconds;
  }
  return matrix;
}

OdMatrix estimate_od_matrix(std::span<const RsuState> states, std::uint32_t s,
                            double z, unsigned workers, DecodeStats* stats) {
  DecodeOptions options;
  options.workers = workers;
  return estimate_od_matrix(states, s, z, options, stats);
}

}  // namespace vlm::core
