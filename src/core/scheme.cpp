#include "core/scheme.h"

#include <string>

#include "common/require.h"

namespace vlm::core {

SchemePtr make_vlm_scheme(const VlmSchemeConfig& config) {
  return std::make_shared<VlmScheme>(config);
}

SchemePtr make_fbm_scheme(const FbmSchemeConfig& config) {
  return std::make_shared<FbmScheme>(config);
}

SchemePtr make_scheme(std::string_view name, const SchemeOptions& options) {
  if (name == "vlm") {
    return make_vlm_scheme(VlmSchemeConfig{options.s, options.load_factor,
                                           options.salt_seed, options.limits,
                                           options.slot_selection});
  }
  if (name == "fbm") {
    return make_fbm_scheme(FbmSchemeConfig{options.s, options.array_size,
                                           options.salt_seed,
                                           options.slot_selection});
  }
  VLM_REQUIRE(false, "unknown scheme '" + std::string(name) +
                         "': expected 'vlm' or 'fbm'");
  return nullptr;  // unreachable
}

}  // namespace vlm::core
