// Distinct-vehicle (union) cardinality across a set of RSUs.
//
// |S_1 ∪ ... ∪ S_k| by inclusion-exclusion: the counters give the Σ|S_a|
// term exactly, and the pair estimator supplies every |S_a ∩ S_b|. We
// truncate after the pairwise term (the Bonferroni lower bound), which
// is exact when no vehicle visits three or more of the k sites and an
// under-estimate otherwise; callers with triple-heavy traffic can add
// TripleEstimator corrections on top. For k = 1 this is just the
// counter.
#pragma once

#include <cstdint>
#include <span>

#include "core/estimator.h"
#include "core/rsu_state.h"

namespace vlm::core {

struct UnionEstimate {
  double distinct_vehicles = 0.0;  // Σ counters − Σ pairwise, clamped >= 0
  double total_reports = 0.0;      // Σ counters (one per visit)
  double pairwise_overlap = 0.0;   // Σ of the pairwise estimates removed
  bool saturated = false;          // any pair estimate was saturated
};

class UnionEstimator {
 public:
  explicit UnionEstimator(std::uint32_t s);

  // Estimates |S_1 ∪ ... ∪ S_k| from k >= 1 RSU states (array sizes
  // powers of two). O(k² m_max) for the pairwise stage.
  UnionEstimate estimate(std::span<const RsuState> states) const;

 private:
  PairEstimator pair_estimator_;
};

}  // namespace vlm::core
