// E3 — Table I: point-to-point volumes on the Sioux Falls network.
//
// Two trajectory models:
//
//   --trajectories=od (default, matches the paper): each trip in the
//     canonical table is one vehicle that reports to exactly its origin
//     and destination RSUs. Cross-checking our transcribed table against
//     the paper's Table I shows this is precisely what the authors did —
//     their n_x values equal the table's per-node demand sums (node 15:
//     213, node 3: 28, ...) and their n_c values equal the OD entries
//     T(x, 10) — so this mode reproduces the paper's d and n_c/n_x
//     structure exactly (up to demand rescaling to n_y = 451k).
//
//   --trajectories=routed (extension): trips are routed by Frank-Wolfe
//     user equilibrium (LeBlanc 1975) and vehicles report to EVERY RSU en
//     route, which is what a deployed system would see. Through-traffic
//     makes volumes more homogeneous (d tops out near 7).
//
// Both schemes run on the same vehicle stream: FBM with one global m
// capped by the privacy rule at the lightest RSU, VLM with per-RSU
// sizing at f̄. The error ratio r = |n̂_c − n_c| / n_c follows the
// paper's Table I definition (single measurement period, like the
// paper's table). The "floor" column is the standard deviation lower
// bound sqrt(n_c (s−1)) / n_c imposed by the logical-slot randomness —
// no single-run error can be expected below it (see EXPERIMENTS.md for
// why the paper's sub-0.3%% entries are below this bound).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/encoder.h"
#include "core/accuracy_model.h"
#include "core/estimator.h"
#include "core/pair_simulation.h"
#include "core/sizing.h"
#include "roadnet/assignment.h"
#include "roadnet/sioux_falls.h"
#include "roadnet/trajectory.h"

namespace {

using namespace vlm;

// The paper's R_x selection, sorted by traffic difference ratio.
constexpr int kPaperRxNodes[] = {15, 12, 7, 24, 6, 18, 2, 3};
constexpr int kRyNode = 10;

using VehicleStream =
    std::function<void(const std::function<void(std::span<const roadnet::NodeIndex>)>&)>;

// OD-endpoint stream: T(o, d) vehicles visiting {o, d}, demands scaled.
VehicleStream od_stream(const roadnet::TripTable& trips, double scale) {
  return [&trips, scale](const auto& visit) {
    for (roadnet::NodeIndex o = 0; o < trips.node_count(); ++o) {
      for (roadnet::NodeIndex d = 0; d < trips.node_count(); ++d) {
        const auto count =
            static_cast<std::uint64_t>(std::llround(trips.demand(o, d) * scale));
        const roadnet::NodeIndex nodes[2] = {o, d};
        for (std::uint64_t v = 0; v < count; ++v) {
          visit(std::span<const roadnet::NodeIndex>(nodes, 2));
        }
      }
    }
  };
}

}  // namespace

int main(int argc, char** argv) {
  common::ArgParser parser("bench_table1_sioux_falls",
                           "Table I: Sioux Falls point-to-point volumes");
  parser.add_int("s", 2, "logical bit array size (paper: 2)");
  parser.add_double("load-factor", 8.0, "VLM global load factor f̄");
  parser.add_double("privacy-cap", 15.0,
                    "FBM load-factor cap at the lightest RSU (privacy 0.5)");
  parser.add_double("target-ny", 451'000.0,
                    "daily volume to calibrate node 10 to (paper: 451k)");
  parser.add_string("trajectories", "od",
                    "'od' = origin/destination only (paper); 'routed' = "
                    "user-equilibrium routes, reporting at every node");
  parser.add_int("seed", 20150702, "trajectory sampling seed");
  parser.add_int("fw-iterations", 40, "Frank-Wolfe iterations (routed mode)");
  if (!parser.parse(argc, argv)) return 0;
  const auto s = static_cast<std::uint32_t>(parser.get_int("s"));
  const double f_bar = parser.get_double("load-factor");
  const double cap = parser.get_double("privacy-cap");
  const double target_ny = parser.get_double("target-ny");
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  const bool routed = parser.get_string("trajectories") == "routed";

  const roadnet::Graph graph = roadnet::sioux_falls_network();
  roadnet::TripTable trips = roadnet::sioux_falls_trip_table();

  // Build the vehicle stream and the per-node expected volumes used as
  // sizing history.
  std::vector<double> history(24, 0.0);
  VehicleStream stream;
  roadnet::AssignmentResult assignment;  // kept alive for routed mode
  std::unique_ptr<roadnet::TrajectorySampler> sampler;
  if (routed) {
    roadnet::AssignmentOptions options;
    options.method = roadnet::AssignmentMethod::kFrankWolfe;
    options.max_iterations = static_cast<int>(parser.get_int("fw-iterations"));
    assignment = roadnet::assign(graph, trips, options);
    const double scale =
        target_ny / assignment.expected_node_volume(kRyNode - 1);
    trips.scale(scale);
    assignment = roadnet::assign(graph, trips, options);
    std::printf(
        "routed mode: FW gap %.1e, demand scaled by %.3f (node 10: %.0f)\n",
        assignment.relative_gap, scale,
        assignment.expected_node_volume(kRyNode - 1));
    for (roadnet::NodeIndex n = 0; n < 24; ++n) {
      history[n] = assignment.expected_node_volume(n);
    }
    sampler = std::make_unique<roadnet::TrajectorySampler>(assignment, seed);
    stream = [&sampler](const auto& visit) { sampler->for_each_vehicle(visit); };
  } else {
    const double unscaled_ny = trips.node_demand(kRyNode - 1);
    const double scale = target_ny / unscaled_ny;
    std::printf(
        "od mode: demand scaled by %.3f so node 10 sees %.0f reports/day\n",
        scale, unscaled_ny * scale);
    for (roadnet::NodeIndex n = 0; n < 24; ++n) {
      history[n] = trips.node_demand(n) * scale;
    }
    stream = od_stream(trips, scale);
  }

  double min_volume = 1e18;
  for (double h : history) min_volume = std::min(min_volume, h);

  const core::VlmSizingPolicy vlm_sizing(f_bar);
  const auto fbm_sizing =
      core::FbmSizingPolicy::for_min_volume(min_volume, cap);
  std::printf("FBM: m = %zu for all RSUs (n_min = %.0f, cap %.0f)\n",
              fbm_sizing.array_size(), min_volume, cap);

  core::Encoder encoder((core::EncoderConfig{s}));
  core::PairEstimator estimator(s);
  std::vector<core::RsuState> vlm_states, fbm_states;
  for (roadnet::NodeIndex n = 0; n < 24; ++n) {
    vlm_states.emplace_back(vlm_sizing.array_size_for(history[n]));
    fbm_states.emplace_back(fbm_sizing.array_size());
  }

  // One day of traffic: every vehicle answers every RSU it passes, for
  // both schemes, while ground truth accumulates.
  std::vector<std::uint64_t> true_volume(24, 0);
  std::vector<std::uint64_t> true_common(24, 0);  // vs node 10
  std::uint64_t vehicle_counter = 0;
  stream([&](std::span<const roadnet::NodeIndex> nodes) {
    ++vehicle_counter;
    const core::VehicleIdentity v =
        core::synthetic_vehicle(seed, vehicle_counter);
    const bool hits_ry =
        std::find(nodes.begin(), nodes.end(), kRyNode - 1) != nodes.end();
    for (roadnet::NodeIndex node : nodes) {
      ++true_volume[node];
      if (hits_ry && node != kRyNode - 1) ++true_common[node];
      const core::RsuId rsu{node + 1u};
      vlm_states[node].record(
          encoder.bit_index(v, rsu, vlm_states[node].array_size()));
      fbm_states[node].record(
          encoder.bit_index(v, rsu, fbm_states[node].array_size()));
    }
  });
  std::printf("simulated %llu vehicles; node 10 realized volume %llu\n\n",
              static_cast<unsigned long long>(vehicle_counter),
              static_cast<unsigned long long>(true_volume[kRyNode - 1]));

  common::TextTable table({"R_x", "n_x", "d", "n_c", "n_c^ (FBM)",
                           "n_c^ (VLM)", "r (FBM)", "r (VLM)", "sigma (FBM)",
                           "sigma (VLM)", "floor"});
  const double n_y = static_cast<double>(true_volume[kRyNode - 1]);
  double worst_fbm = 0.0, worst_vlm = 0.0;
  for (int rx : kPaperRxNodes) {
    const auto node = static_cast<roadnet::NodeIndex>(rx - 1);
    const double n_x = static_cast<double>(true_volume[node]);
    const double n_c = static_cast<double>(true_common[node]);
    const auto fbm_est =
        estimator.estimate(fbm_states[node], fbm_states[kRyNode - 1]);
    const auto vlm_est =
        estimator.estimate(vlm_states[node], vlm_states[kRyNode - 1]);
    const double r_fbm = std::fabs(fbm_est.n_c_hat - n_c) / n_c;
    const double r_vlm = std::fabs(vlm_est.n_c_hat - n_c) / n_c;
    // Occupancy-exact predicted spread of a single-period estimate; the
    // scheme with the smaller sigma wins in expectation even when one
    // realization (the r columns) says otherwise.
    const auto sigma_fbm =
        core::AccuracyModel::predict(
            core::PairScenario{n_x, n_y, n_c, fbm_states[node].array_size(),
                               fbm_states[kRyNode - 1].array_size(), s})
            .stddev_ratio;
    const auto sigma_vlm =
        core::AccuracyModel::predict(
            core::PairScenario{n_x, n_y, n_c, vlm_states[node].array_size(),
                               vlm_states[kRyNode - 1].array_size(), s})
            .stddev_ratio;
    const double floor = std::sqrt(n_c * (double(s) - 1.0)) / n_c;
    worst_fbm = std::max(worst_fbm, r_fbm);
    worst_vlm = std::max(worst_vlm, r_vlm);
    table.add_row({std::to_string(rx), common::TextTable::fmt(n_x / 1000, 0),
                   common::TextTable::fmt(n_y / n_x, 3),
                   common::TextTable::fmt(n_c / 1000, 1),
                   common::TextTable::fmt(fbm_est.n_c_hat / 1000, 3),
                   common::TextTable::fmt(vlm_est.n_c_hat / 1000, 3),
                   common::TextTable::fmt_percent(r_fbm, 3),
                   common::TextTable::fmt_percent(r_vlm, 3),
                   common::TextTable::fmt_percent(sigma_fbm, 2),
                   common::TextTable::fmt_percent(sigma_vlm, 2),
                   common::TextTable::fmt_percent(floor, 2)});
  }
  std::printf(
      "Table I reproduction (volumes in thousands/day; R_y = node 10, "
      "n_y = %.0fk, m_y(VLM) = %zu):\n%s",
      n_y / 1000, vlm_states[kRyNode - 1].array_size(),
      table.to_string().c_str());
  std::printf(
      "worst single-run error ratio: FBM %.2f%%, VLM %.2f%%\n"
      "'sigma' = predicted single-run StdDev[n̂_c/n_c] (occupancy-exact "
      "model);\n'floor' = sqrt(n_c (s-1))/n_c, the spread imposed by "
      "logical-slot randomness\nalone — single-run errors below it (as in "
      "the paper's Table I) are not\nstatistically reachable; see "
      "EXPERIMENTS.md.\n",
      worst_fbm * 100, worst_vlm * 100);
  return 0;
}
