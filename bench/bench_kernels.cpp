// Kernel microbench: the four dispatched bit-kernels (bulk popcount,
// fused OR+popcount — equal-size and cyclic-unfold forms — in-place
// OR-merge with recount, and bulk-set scatter+recount), swept over
// array sizes m = 2^min-exp .. 2^max-exp, scalar baseline vs whatever
// ISA the runtime dispatch selected.
//
//   $ bench_kernels                                   # full sweep, JSON out
//   $ bench_kernels --min-exp 10 --max-exp 12 --repeat 1     # smoke
//   $ VLM_KERNELS=avx2 bench_kernels                  # pin a variant
//
// Every timed result is first cross-checked against the scalar table on
// the same inputs (counts AND merged words); the process exits non-zero
// on any mismatch, so CI runs double as a bit-exactness gate.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/kernels/kernels.h"
#include "common/rng.h"
#include "obs/clock.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace {

using namespace vlm;
namespace kernels = vlm::common::kernels;

std::vector<std::uint64_t> random_words(std::size_t n,
                                        common::Xoshiro256ss& rng) {
  std::vector<std::uint64_t> out(n);
  for (auto& w : out) w = rng.next();
  return out;
}

// Seconds per call: `iters` back-to-back calls, best of `repeat` runs.
template <typename Fn>
double time_kernel(int repeat, std::size_t iters, Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < repeat; ++rep) {
    const obs::Stopwatch t0;
    for (std::size_t i = 0; i < iters; ++i) fn();
    best = std::min(best, t0.seconds() / static_cast<double>(iters));
  }
  return best;
}

struct KernelRow {
  const char* key;
  double scalar_seconds = 0.0;
  double dispatched_seconds = 0.0;
  std::size_t words_touched = 0;  // per call, for bandwidth

  double speedup() const {
    return dispatched_seconds > 0.0 ? scalar_seconds / dispatched_seconds
                                    : 0.0;
  }
  double dispatched_gib_per_second() const {
    return dispatched_seconds > 0.0
               ? static_cast<double>(words_touched) * 8.0 /
                     (dispatched_seconds * 1024.0 * 1024.0 * 1024.0)
               : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  common::ArgParser parser("bench_kernels",
                           "scalar vs dispatched SIMD bit-kernel sweep");
  parser.add_int("min-exp", 10, "smallest log2 array size (bits)");
  parser.add_int("max-exp", 24, "largest log2 array size (bits)");
  parser.add_int("exp-step", 2, "exponent stride of the sweep");
  parser.add_int("unfold", 16, "unfold ratio for the cyclic fused kernel");
  parser.add_int("repeat", 3, "timing repetitions (best-of)");
  parser.add_int("seed", 11, "input data seed");
  if (!parser.parse(argc, argv)) return 0;

  const auto min_exp = static_cast<unsigned>(parser.get_int("min-exp"));
  const auto max_exp = static_cast<unsigned>(parser.get_int("max-exp"));
  const auto exp_step =
      std::max<unsigned>(1, static_cast<unsigned>(parser.get_int("exp-step")));
  const auto unfold =
      std::max<std::size_t>(1, static_cast<std::size_t>(parser.get_int("unfold")));
  const int repeat = std::max(1, static_cast<int>(parser.get_int("repeat")));
  common::Xoshiro256ss rng(static_cast<std::uint64_t>(parser.get_int("seed")));

  const kernels::KernelTable& scalar = kernels::scalar_table();
  const kernels::KernelTable& dispatched = kernels::active();

  bool identical = true;
  std::string sizes_json;
  char buf[512];
  // Fused-OR speedups at m >= 2^20 — the headline the decode pipeline
  // inherits (acceptance: >= 2x on SIMD hosts).
  double min_large_fused_speedup = 1e300;

  for (unsigned exp = min_exp; exp <= max_exp; exp += exp_step) {
    // One span per sweep size, so the embedded snapshot carries the
    // sweep's own phase trace alongside the kernel timings.
    const obs::Span sweep_span(obs::phase("bench/kernel_sweep"));
    const std::size_t m = std::size_t{1} << exp;
    const std::size_t n = std::max<std::size_t>(1, m / 64);
    const std::size_t ns = std::max<std::size_t>(1, n / unfold);
    // Enough iterations that even the fastest kernel accumulates
    // measurable wall time at small sizes.
    const std::size_t iters =
        std::max<std::size_t>(1, (std::size_t{1} << 24) / n);

    const std::vector<std::uint64_t> a = random_words(n, rng);
    const std::vector<std::uint64_t> b = random_words(n, rng);
    const std::vector<std::uint64_t> small = random_words(ns, rng);
    std::vector<std::size_t> indices(m / 8);
    for (auto& idx : indices) idx = rng.uniform(m);

    // --- Cross-check every kernel before timing it. ---
    identical = identical &&
                scalar.popcount(a.data(), n) == dispatched.popcount(a.data(), n);
    identical = identical &&
                scalar.or_popcount_cyclic(a.data(), n, b.data(), n) ==
                    dispatched.or_popcount_cyclic(a.data(), n, b.data(), n);
    identical = identical &&
                scalar.or_popcount_cyclic(a.data(), n, small.data(), ns) ==
                    dispatched.or_popcount_cyclic(a.data(), n, small.data(), ns);
    {
      std::vector<std::uint64_t> ds = a, dd = a;
      const std::size_t ones_s = scalar.merge_or(ds.data(), b.data(), n);
      const std::size_t ones_d = dispatched.merge_or(dd.data(), b.data(), n);
      identical = identical && ones_s == ones_d && ds == dd;
    }
    {
      std::vector<std::uint64_t> ws((m + 63) / 64, 0), wd((m + 63) / 64, 0);
      const std::size_t ones_s =
          scalar.set_scatter(ws.data(), m, indices.data(), indices.size());
      const std::size_t ones_d =
          dispatched.set_scatter(wd.data(), m, indices.data(), indices.size());
      identical = identical && ones_s == ones_d && ws == wd;
    }

    // --- Timed sweeps (merged/scattered buffers pre-saturated so every
    // iteration does identical work). ---
    std::vector<std::uint64_t> merged = a;
    scalar.merge_or(merged.data(), b.data(), n);
    std::vector<std::uint64_t> scattered((m + 63) / 64, 0);
    scalar.set_scatter(scattered.data(), m, indices.data(), indices.size());

    KernelRow rows[] = {
        {"popcount", 0, 0, n},
        {"or_popcount_fused", 0, 0, 2 * n},
        {"or_popcount_unfold", 0, 0, n + ns},
        {"merge_or", 0, 0, 2 * n},
        {"set_scatter", 0, 0, n + indices.size()},
    };
    for (const bool use_dispatched : {false, true}) {
      const kernels::KernelTable& t = use_dispatched ? dispatched : scalar;
      double* slot[] = {
          use_dispatched ? &rows[0].dispatched_seconds : &rows[0].scalar_seconds,
          use_dispatched ? &rows[1].dispatched_seconds : &rows[1].scalar_seconds,
          use_dispatched ? &rows[2].dispatched_seconds : &rows[2].scalar_seconds,
          use_dispatched ? &rows[3].dispatched_seconds : &rows[3].scalar_seconds,
          use_dispatched ? &rows[4].dispatched_seconds : &rows[4].scalar_seconds,
      };
      *slot[0] = time_kernel(repeat, iters, [&] { t.popcount(a.data(), n); });
      *slot[1] = time_kernel(repeat, iters, [&] {
        t.or_popcount_cyclic(a.data(), n, b.data(), n);
      });
      *slot[2] = time_kernel(repeat, iters, [&] {
        t.or_popcount_cyclic(a.data(), n, small.data(), ns);
      });
      *slot[3] = time_kernel(repeat, iters, [&] {
        t.merge_or(merged.data(), b.data(), n);
      });
      *slot[4] = time_kernel(repeat, iters, [&] {
        t.set_scatter(scattered.data(), m, indices.data(), indices.size());
      });
    }
    if (exp >= 20) {
      min_large_fused_speedup =
          std::min({min_large_fused_speedup, rows[1].speedup(),
                    rows[2].speedup()});
    }

    std::snprintf(buf, sizeof(buf), "%s  {\"m\": %zu, \"words\": %zu,\n",
                  sizes_json.empty() ? "" : ",\n", m, n);
    sizes_json += buf;
    for (std::size_t r = 0; r < 5; ++r) {
      std::snprintf(
          buf, sizeof(buf),
          "   \"%s\": {\"scalar_seconds\": %.3e, \"dispatched_seconds\": "
          "%.3e, \"speedup\": %.2f, \"dispatched_gib_s\": %.1f}%s\n",
          rows[r].key, rows[r].scalar_seconds, rows[r].dispatched_seconds,
          rows[r].speedup(), rows[r].dispatched_gib_per_second(),
          r + 1 < 5 ? "," : "}");
      sizes_json += buf;
    }
  }

  std::string isas;
  for (const kernels::Isa isa : kernels::available_isas()) {
    isas += isas.empty() ? "\"" : ", \"";
    isas += kernels::isa_name(isa);
    isas += "\"";
  }
  std::printf(
      "{\"kernel_isa\": \"%s\",\n"
      " \"isas_available\": [%s],\n"
      " \"unfold_ratio\": %zu,\n"
      " \"sizes\": [\n%s\n ],\n"
      " \"min_fused_speedup_m_ge_2e20\": %.2f,\n"
      " \"identical\": %s,\n"
      " \"metrics\": %s}\n",
      dispatched.name, isas.c_str(), unfold, sizes_json.c_str(),
      min_large_fused_speedup < 1e300 ? min_large_fused_speedup : 0.0,
      identical ? "true" : "false",
      obs::to_json(obs::MetricsRegistry::global().snapshot(), {}, 2).c_str());
  return identical ? 0 : 1;
}
