// E1/E2 — Figure 2: preserved privacy p as a function of the load factor.
//
// Plot 1: n_y = n_x (both schemes coincide; also the FBM curve). The
//         paper's headline observations: optimal privacy ~0.75 at f* ~ 3
//         for s = 5; p ~ 0.5 at f = 15 and ~0.2 at f = 50 for s = 2 (the
//         fate of a light RSU when FBM sizes m for a heavy one).
// Plot 2: n_y = 10 n_x under VLM (both RSUs at load factor f̄).
// Plot 3: n_y = 50 n_x under VLM.
//
// The common fraction n_c = 0.1 n_x calibrates the curves to the paper's
// quoted values (see EXPERIMENTS.md); it is adjustable via --common-frac.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.h"
#include "common/csv.h"
#include "common/table.h"
#include "core/privacy_model.h"

int main(int argc, char** argv) {
  using namespace vlm;
  common::ArgParser parser("bench_fig2_privacy",
                           "Figure 2: preserved privacy vs load factor");
  parser.add_double("n-x", 10'000, "point volume at the light RSU");
  parser.add_double("common-frac", 0.1, "n_c as a fraction of n_x");
  parser.add_string("csv", "", "optional CSV output path");
  if (!parser.parse(argc, argv)) return 0;
  const double n_x = parser.get_double("n-x");
  const double c_frac = parser.get_double("common-frac");

  const std::vector<double> load_factors = {0.1, 0.2, 0.5, 1,  2,  3,  4,
                                            5,   6,  8,  10, 15, 20, 30,
                                            40,  50};
  const std::vector<std::uint32_t> s_values = {2, 5, 10};

  std::unique_ptr<common::CsvWriter> csv;
  if (!parser.get_string("csv").empty()) {
    csv = std::make_unique<common::CsvWriter>(
        parser.get_string("csv"),
        std::vector<std::string>{"ratio_y", "s", "f", "p"});
  }

  for (double ratio : {1.0, 10.0, 50.0}) {
    std::printf("\n--- Fig. 2 plot: n_y = %.0f n_x, n_c = %.2f n_x ---\n",
                ratio, c_frac);
    common::TextTable table({"f", "p (s=2)", "p (s=5)", "p (s=10)"});
    double best_f[3] = {0, 0, 0}, best_p[3] = {0, 0, 0};
    for (double f : load_factors) {
      std::vector<std::string> row{common::TextTable::fmt(f, 1)};
      for (std::size_t si = 0; si < s_values.size(); ++si) {
        const double p = core::PrivacyModel::privacy_at_load_factor(
            f, n_x, ratio * n_x, c_frac, s_values[si]);
        row.push_back(common::TextTable::fmt(p, 4));
        if (p > best_p[si]) {
          best_p[si] = p;
          best_f[si] = f;
        }
        if (csv) {
          csv->add_row({common::TextTable::fmt(ratio, 0),
                        std::to_string(s_values[si]),
                        common::TextTable::fmt(f, 2),
                        common::TextTable::fmt(p, 6)});
        }
      }
      table.add_row(std::move(row));
    }
    std::printf("%s", table.to_string().c_str());
    for (std::size_t si = 0; si < s_values.size(); ++si) {
      std::printf("optimal privacy for s=%u: p* = %.3f at f* = %.1f\n",
                  s_values[si], best_p[si], best_f[si]);
    }
  }

  // Paper formula (Eq. 43) vs this library's exact closed form at each
  // plot's optimum. The two coincide for equal sizes up to the
  // independence approximation; for unfolded pairs the paper's Eq. 40
  // additionally mis-models same-slot vehicles and is optimistic by a
  // few percentage points (Monte-Carlo sides with the exact form; see
  // tests/core/privacy_mc_test.cpp and EXPERIMENTS.md).
  std::printf("\n--- Eq. 43 vs exact closed form (f = 3, s = 5) ---\n");
  common::TextTable cmp({"n_y / n_x", "p (Eq. 43)", "p (exact)"});
  for (double ratio : {1.0, 10.0, 50.0}) {
    const core::PairScenario sc{
        n_x, ratio * n_x, c_frac * n_x,
        static_cast<std::size_t>(3.0 * n_x),
        static_cast<std::size_t>(3.0 * ratio * n_x), 5};
    cmp.add_row({common::TextTable::fmt(ratio, 0),
                 common::TextTable::fmt(core::PrivacyModel::evaluate(sc).p, 4),
                 common::TextTable::fmt(
                     core::PrivacyModel::evaluate_exact(sc).p, 4)});
  }
  std::printf("%s", cmp.to_string().c_str());

  // The paper's FBM motivating example: m sized for a heavy RSU
  // (m = 2 n'), applied to a light RSU with n'' = n'/25 -> f = 50.
  std::printf(
      "\n--- FBM unbalanced-load illustration (Section VI-B) ---\n"
      "m fixed at 2 n_heavy; a light RSU with n = n_heavy/25 runs at f = 50:\n");
  common::TextTable fbm({"RSU", "n", "f", "p (s=2)", "p (s=5)", "p (s=10)"});
  const double n_heavy = 500'000;
  for (double n : {n_heavy, n_heavy / 25.0}) {
    const double f = 2.0 * n_heavy / n;
    std::vector<std::string> row{n == n_heavy ? "heavy" : "light",
                                 common::TextTable::fmt(n, 0),
                                 common::TextTable::fmt(f, 0)};
    for (std::uint32_t s : s_values) {
      row.push_back(common::TextTable::fmt(
          core::PrivacyModel::privacy_at_load_factor(f, n, n, c_frac, s), 3));
    }
    fbm.add_row(std::move(row));
  }
  std::printf("%s", fbm.to_string().c_str());
  return 0;
}
