// Extension bench — three-point intersection estimation.
//
// Not a paper artifact: the paper estimates pairs only. This harness
// quantifies the natural extension implemented in core/triple_estimator
// (unfold-all + triple OR + generalized MLE): estimation quality of
// |S_x ∩ S_y ∩ S_z| across overlap levels and array-size mixes, with and
// without plugging in true pairwise values (isolating the noise the
// pairwise stage contributes).
#include <cmath>
#include <cstdio>

#include "common/cli.h"
#include "common/hashing.h"
#include "common/table.h"
#include "core/encoder.h"
#include "core/pair_simulation.h"
#include "core/triple_estimator.h"
#include "stats/descriptive.h"

namespace {

using namespace vlm;

struct TripleWorkload {
  std::uint64_t only[3];
  std::uint64_t pure_pair[3];  // xy, xz, yz
  std::uint64_t triple;
};

struct TripleStates {
  core::RsuState x, y, z;
};

TripleStates simulate(const core::Encoder& enc, const TripleWorkload& w,
                      std::size_t m_x, std::size_t m_y, std::size_t m_z,
                      std::uint64_t seed) {
  TripleStates st{core::RsuState(m_x), core::RsuState(m_y),
                  core::RsuState(m_z)};
  const core::RsuId rx{0xA1}, ry{0xB2}, rz{0xC3};
  std::uint64_t index = 0;
  auto drive = [&](bool hx, bool hy, bool hz, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const core::VehicleIdentity v = core::synthetic_vehicle(seed, index++);
      if (hx) st.x.record(enc.bit_index(v, rx, m_x));
      if (hy) st.y.record(enc.bit_index(v, ry, m_y));
      if (hz) st.z.record(enc.bit_index(v, rz, m_z));
    }
  };
  drive(true, false, false, w.only[0]);
  drive(false, true, false, w.only[1]);
  drive(false, false, true, w.only[2]);
  drive(true, true, false, w.pure_pair[0]);
  drive(true, false, true, w.pure_pair[1]);
  drive(false, true, true, w.pure_pair[2]);
  drive(true, true, true, w.triple);
  return st;
}

}  // namespace

int main(int argc, char** argv) {
  common::ArgParser parser("bench_extension_triple",
                           "three-point intersection estimation quality");
  parser.add_int("trials", 16, "runs per configuration");
  parser.add_int("seed", 4242, "base seed");
  if (!parser.parse(argc, argv)) return 0;
  const int trials = static_cast<int>(parser.get_int("trials"));
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  core::Encoder enc((core::EncoderConfig{2}));
  core::TripleEstimator est(2);

  struct Case {
    const char* label;
    TripleWorkload w;
    std::size_t m_x, m_y, m_z;
  };
  const Case cases[] = {
      {"equal, triple 6k",
       {{16'000, 16'000, 16'000}, {4'000, 4'000, 4'000}, 6'000},
       1 << 18, 1 << 18, 1 << 18},
      {"equal, triple 1.5k",
       {{16'000, 16'000, 16'000}, {4'000, 4'000, 4'000}, 1'500},
       1 << 18, 1 << 18, 1 << 18},
      {"sizes 2^17/2^18/2^20",
       {{6'000, 20'000, 60'000}, {3'000, 3'000, 3'000}, 4'000},
       1 << 17, 1 << 18, 1 << 20},
  };

  common::TextTable table({"configuration", "true n_xyz", "mean ratio (full)",
                           "|err| (full)", "mean ratio (known pairs)",
                           "|err| (known pairs)"});
  for (const Case& c : cases) {
    vlm::stats::RunningStats full, known;
    const double truth = static_cast<double>(c.w.triple);
    for (int t = 0; t < trials; ++t) {
      const TripleStates st = simulate(
          enc, c.w, c.m_x, c.m_y, c.m_z,
          seed + 1000u * static_cast<std::uint64_t>(t));
      full.push(est.estimate(st.x, st.y, st.z).n_xyz_hat / truth);
      known.push(est.estimate_with_known_pairs(
                        st.x, st.y, st.z,
                        double(c.w.pure_pair[0] + c.w.triple),
                        double(c.w.pure_pair[1] + c.w.triple),
                        double(c.w.pure_pair[2] + c.w.triple))
                     .n_xyz_hat /
                 truth);
    }
    table.add_row({c.label, common::TextTable::fmt(truth, 0),
                   common::TextTable::fmt(full.mean(), 3),
                   common::TextTable::fmt_percent(
                       std::fabs(full.mean() - 1.0) + full.stddev(), 1),
                   common::TextTable::fmt(known.mean(), 3),
                   common::TextTable::fmt_percent(
                       std::fabs(known.mean() - 1.0) + known.stddev(), 1)});
  }
  std::printf("Three-point intersection extension (%d trials/case):\n%s",
              trials, table.to_string().c_str());
  std::printf(
      "\nThe triple-overlap signal per vehicle is K ~ -1/(s^2 m_z) — s times\n"
      "weaker than the pairwise one — so expect noisier estimates; the\n"
      "'known pairs' columns isolate the triple stage from pairwise noise.\n");
  return 0;
}
