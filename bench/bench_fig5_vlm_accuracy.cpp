// E5 — Figure 5: measurement accuracy of the paper's VLM scheme.
//
// Each RSU's array is sized individually at load factor f̄ (default 8, so
// the power-of-two rounding keeps every realized load factor within the
// privacy-0.5 cap of 15). Expected shape: the estimates track y = x in
// all three plots, including n_y = 50 n_x where FBM falls apart.
#include <cstdio>

#include "core/sizing.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace vlm;
  auto parser = bench::make_figure_parser(
      "bench_fig5_vlm_accuracy",
      "Figure 5: accuracy scatter of variable-length bit array masking");
  parser.add_double("load-factor", 8.0, "the global target load factor f̄");
  if (!parser.parse(argc, argv)) return 0;
  const auto config = bench::figure_config_from(parser);
  const double f_bar = parser.get_double("load-factor");

  std::printf("Figure 5 reproduction: VLM scheme, s = %u, f̄ = %.1f\n",
              config.s, f_bar);
  core::VlmSizingPolicy policy(f_bar);
  const auto sizing = [&](double n_x, double n_y) {
    return std::make_pair(policy.array_size_for(n_x),
                          policy.array_size_for(n_y));
  };
  for (double ratio : {1.0, 10.0, 50.0}) {
    bench::run_accuracy_plot(config, ratio, sizing,
                             "fig5_ratio" + std::to_string(int(ratio)));
  }
  return 0;
}
