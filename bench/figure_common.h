// Shared harness for the Figure 4/5 accuracy scatter benches.
//
// Both figures run the same sweep (Section VII-B): n_x = 10,000,
// n_y ∈ {1, 10, 50} * n_x, n_c from 0.01 n_x to 0.5 n_x, s = 2, with
// sizing chosen to guarantee minimum privacy 0.5. They differ ONLY in the
// sizing rule: FBM uses one global m derived from n_min = n_x; VLM sizes
// each RSU at load factor f̄. Each sweep point is a single protocol-exact
// simulation run (the paper's figures are scatter plots of single runs).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/csv.h"
#include "common/table.h"
#include "core/estimator.h"
#include "core/pair_simulation.h"
#include "stats/descriptive.h"
#include "traffic/sweeps.h"

namespace vlm::bench {

struct FigureConfig {
  std::uint32_t s = 2;
  double c_step_frac = 0.01;  // default coarse grid; --step=0.001 = paper
  std::uint64_t n_x = 10'000;
  std::uint64_t seed = 20150701;
  std::string csv_path;  // empty = no csv
};

inline common::ArgParser make_figure_parser(const std::string& name,
                                            const std::string& what) {
  common::ArgParser parser(name, what);
  parser.add_int("s", 2, "logical bit array size (paper uses 2, 5, 10)");
  parser.add_double("step", 0.01,
                    "n_c sweep step as a fraction of n_x (paper: 0.001)");
  parser.add_int("n-x", 10'000, "point volume at the light RSU");
  parser.add_int("seed", 20150701, "simulation seed");
  parser.add_string("csv", "", "optional CSV output path prefix");
  return parser;
}

inline FigureConfig figure_config_from(const common::ArgParser& parser) {
  FigureConfig config;
  config.s = static_cast<std::uint32_t>(parser.get_int("s"));
  config.c_step_frac = parser.get_double("step");
  config.n_x = static_cast<std::uint64_t>(parser.get_int("n-x"));
  config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  config.csv_path = parser.get_string("csv");
  return config;
}

// Sizing callback: (n_x, n_y) -> (m_x, m_y).
using SizingRule =
    std::function<std::pair<std::size_t, std::size_t>(double, double)>;

// Runs one plot (one n_y/n_x ratio) and prints the scatter plus summary.
inline void run_accuracy_plot(const FigureConfig& config, double ratio_y,
                              const SizingRule& sizing,
                              const std::string& plot_label) {
  traffic::FigureSweepSpec spec;
  spec.n_x = config.n_x;
  spec.ratio_y = ratio_y;
  spec.c_step_frac = config.c_step_frac;
  const auto sweep = traffic::build_figure_sweep(spec);

  core::Encoder encoder(core::EncoderConfig{
      config.s, 0x5EEDBA5EBA11AD00ull, core::SlotSelection::kPerVehicleUniform});
  core::PairEstimator estimator(config.s);

  const auto [m_x, m_y] = sizing(static_cast<double>(config.n_x),
                                 ratio_y * static_cast<double>(config.n_x));

  std::unique_ptr<common::CsvWriter> csv;
  if (!config.csv_path.empty()) {
    csv = std::make_unique<common::CsvWriter>(
        config.csv_path + "_" + plot_label + ".csv",
        std::vector<std::string>{"n_c", "n_c_hat", "ratio"});
  }

  common::TextTable table({"n_c", "n_c_hat", "ratio", "error"});
  stats::RunningStats ratio_stats, abs_err_stats;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const core::PairWorkload& w = sweep[i];
    const auto states = core::simulate_pair(
        encoder, w, m_x, m_y, config.seed + i * 7919);
    const auto e = estimator.estimate(states.x, states.y);
    const double nc = static_cast<double>(w.n_c);
    const double ratio = e.n_c_hat / nc;
    ratio_stats.push(ratio);
    abs_err_stats.push(std::fabs(e.n_c_hat - nc) / nc);
    if (csv) {
      csv->add_row({common::TextTable::fmt(nc, 0),
                    common::TextTable::fmt(e.n_c_hat, 2),
                    common::TextTable::fmt(ratio, 5)});
    }
    // Keep the printed table readable: ~16 evenly spaced rows.
    if (i % std::max<std::size_t>(1, sweep.size() / 16) == 0 ||
        i + 1 == sweep.size()) {
      table.add_row({common::TextTable::fmt(nc, 0),
                     common::TextTable::fmt(e.n_c_hat, 1),
                     common::TextTable::fmt(ratio, 3),
                     common::TextTable::fmt_percent(
                         std::fabs(e.n_c_hat - nc) / nc, 2)});
    }
  }

  std::printf("\n--- %s: n_y = %.0f n_x, m_x = %zu, m_y = %zu, s = %u ---\n",
              plot_label.c_str(), ratio_y, m_x, m_y, config.s);
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "summary over %zu points: mean ratio %.4f, ratio stddev %.4f, "
      "mean |error| %.2f%%, max |error| %.2f%%\n",
      sweep.size(), ratio_stats.mean(), ratio_stats.stddev(),
      abs_err_stats.mean() * 100.0, abs_err_stats.max() * 100.0);
}

}  // namespace vlm::bench
