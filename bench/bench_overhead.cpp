// E6 — Section IV-E computation overhead, as google-benchmark
// microbenchmarks.
//
// Claims under test:
//   - vehicle work per query: O(1) (two hashes);
//   - RSU work per reply: O(1) (counter + one bit);
//   - server work per pair: O(m_y) (unfold + OR + three popcounts), and
//     VLM is comparable to FBM at equal m_y.
#include <benchmark/benchmark.h>

#include <bit>
#include <vector>

#include "common/bit_array.h"
#include "common/hashing.h"
#include "core/encoder.h"
#include "core/estimator.h"
#include "core/accuracy_model.h"
#include "core/od_matrix.h"
#include "core/pair_simulation.h"
#include "core/privacy_model.h"
#include "vcps/pki.h"
#include "vcps/rsu.h"
#include "vcps/vehicle.h"

namespace {

using namespace vlm;

void BM_VehicleEncode(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  core::Encoder enc(core::EncoderConfig{});
  core::VehicleIdentity v{core::VehicleId{123}, 456};
  std::uint64_t r = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.bit_index(v, core::RsuId{r++}, m));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_VehicleEncode)->Arg(1 << 10)->Arg(1 << 17)->Arg(1 << 22);

void BM_VehicleFullQueryPath(benchmark::State& state) {
  // Includes certificate verification, as the deployed vehicle would.
  core::Encoder enc(core::EncoderConfig{});
  vcps::CertificateAuthority ca(9);
  vcps::Vehicle vehicle({core::VehicleId{123}, 456}, enc, ca, 1);
  vcps::Rsu rsu(core::RsuId{5}, ca.issue(core::RsuId{5}, 1000), 1 << 17);
  const vcps::Query query = rsu.make_query(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vehicle.handle_query(query));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_VehicleFullQueryPath);

void BM_RsuRecord(benchmark::State& state) {
  core::RsuState rsu(1 << 20);
  std::size_t i = 0;
  for (auto _ : state) {
    rsu.record(i = (i * 2654435761u + 1) & ((1 << 20) - 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RsuRecord);

// Server decode for one pair: unfold + OR + zero counts + Eq. 5. The
// argument pair is (log2 m_x, log2 m_y); equal sizes model FBM, unequal
// sizes model VLM with the same m_y. Expect O(m_y) scaling and near-equal
// cost for FBM vs VLM at the same m_y.
void BM_ServerEstimatePair(benchmark::State& state) {
  const std::size_t m_x = std::size_t{1} << state.range(0);
  const std::size_t m_y = std::size_t{1} << state.range(1);
  core::Encoder enc(core::EncoderConfig{});
  const auto states = core::simulate_pair(
      enc, core::PairWorkload{m_x / 8, m_y / 8, m_x / 32}, m_x, m_y, 42);
  core::PairEstimator est(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.estimate(states.x, states.y));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(m_y / 8));
}
BENCHMARK(BM_ServerEstimatePair)
    ->Args({17, 17})   // FBM at 2^17
    ->Args({14, 17})   // VLM, same m_y
    ->Args({20, 20})   // FBM at 2^20
    ->Args({17, 20})   // VLM, same m_y
    ->Args({17, 22})
    ->Args({22, 22});

// Fused decode kernel vs the materializing path it replaced: one pass
// over the larger array with cyclic indexing vs unfold-copy + OR + three
// separate popcount sweeps.
void BM_JointZeroCountsFused(benchmark::State& state) {
  const std::size_t m_x = std::size_t{1} << state.range(0);
  const std::size_t m_y = std::size_t{1} << state.range(1);
  common::BitArray a(m_x), b(m_y);
  for (std::size_t i = 0; i < m_x; i += 7) a.set(i);
  for (std::size_t i = 0; i < m_y; i += 5) b.set(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::joint_zero_counts(a, b));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(m_y / 8));
}
BENCHMARK(BM_JointZeroCountsFused)->Args({17, 22})->Args({22, 22});

void BM_JointZeroCountsNaive(benchmark::State& state) {
  const std::size_t m_x = std::size_t{1} << state.range(0);
  const std::size_t m_y = std::size_t{1} << state.range(1);
  common::BitArray a(m_x), b(m_y);
  for (std::size_t i = 0; i < m_x; i += 7) a.set(i);
  for (std::size_t i = 0; i < m_y; i += 5) b.set(i);
  // The seed counted zeros with a popcount sweep per array; replicate
  // that here so the comparison is against the old path, not the O(1)
  // maintained counters.
  auto sweep = [](const common::BitArray& bits) {
    std::size_t ones = 0;
    for (std::uint64_t w : bits.words()) {
      ones += static_cast<std::size_t>(std::popcount(w));
    }
    return bits.size() - ones;
  };
  for (auto _ : state) {
    const common::BitArray combined =
        m_x == m_y ? a | b : a.unfolded(m_y) | b;
    benchmark::DoNotOptimize(sweep(a));
    benchmark::DoNotOptimize(sweep(b));
    benchmark::DoNotOptimize(sweep(combined));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(m_y / 8));
}
BENCHMARK(BM_JointZeroCountsNaive)->Args({17, 22})->Args({22, 22});

// Full K×K decode pipeline over a 24-RSU deployment; the argument is the
// worker count (0 = one per core).
void BM_OdMatrixDecode(benchmark::State& state) {
  constexpr std::size_t kRsus = 24;
  const std::size_t m = std::size_t{1} << 20;
  std::vector<core::RsuState> states;
  states.reserve(kRsus);
  std::uint64_t h = 0x0DDB17ull;
  for (std::size_t r = 0; r < kRsus; ++r) {
    core::RsuState rsu(m);
    for (std::size_t i = 0; i < m / 8; ++i) {
      rsu.record(static_cast<std::size_t>(common::mix64(++h) % m));
    }
    states.push_back(std::move(rsu));
  }
  const auto workers = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::estimate_od_matrix(states, 2, 1.96, workers));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRsus * (kRsus - 1) / 2));
}
BENCHMARK(BM_OdMatrixDecode)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_Unfold(benchmark::State& state) {
  const std::size_t m_x = std::size_t{1} << state.range(0);
  const std::size_t m_y = std::size_t{1} << state.range(1);
  common::BitArray bits(m_x);
  for (std::size_t i = 0; i < m_x; i += 7) bits.set(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bits.unfolded(m_y));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(m_y / 8));
}
BENCHMARK(BM_Unfold)->Args({14, 20})->Args({17, 20})->Args({17, 22});

void BM_ReportSerialization(benchmark::State& state) {
  const std::size_t m = std::size_t{1} << state.range(0);
  common::BitArray bits(m);
  for (std::size_t i = 0; i < m; i += 9) bits.set(i);
  for (auto _ : state) {
    const auto bytes = bits.to_bytes();
    benchmark::DoNotOptimize(common::BitArray::from_bytes(m, bytes));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(m / 8));
}
BENCHMARK(BM_ReportSerialization)->Arg(17)->Arg(20)->Arg(22);

// Planning-model costs: how expensive are the closed-form analyses the
// central server runs per pair (interval construction evaluates the
// occupancy model once per estimate).
void BM_AccuracyModelPredict(benchmark::State& state) {
  const core::PairScenario sc{10'000, 100'000, 2'000, 1 << 17, 1 << 20, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::AccuracyModel::predict(sc));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AccuracyModelPredict);

void BM_PrivacyEvaluateExact(benchmark::State& state) {
  const core::PairScenario sc{10'000, 100'000, 2'000, 1 << 17, 1 << 20, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PrivacyModel::evaluate_exact(sc));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PrivacyEvaluateExact);

}  // namespace

BENCHMARK_MAIN();
