// Decode-throughput bench: the seed's serial materializing decode vs the
// fused + parallel K×K pipeline, on a 24-RSU workload at m = 2^22.
//
//   $ bench_decode_throughput                  # full-size run, JSON out
//   $ bench_decode_throughput --m-exp 14 --rsus 6 --repeat 1   # smoke
//
// Emits one JSON object so CI and scripts can track the speedup:
//   - "naive_serial_seconds": per-pair unfold-copy + OR materialization +
//     three separate popcount sweeps (the decode path before the fused
//     kernel existed), run serially over all K(K-1)/2 pairs;
//   - "fused_serial_seconds": estimate_od_matrix with 1 worker;
//   - "fused_parallel_seconds": estimate_od_matrix with one worker per
//     core — asserted bit-identical to the serial result.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/bit_array.h"
#include "common/cli.h"
#include "common/hashing.h"
#include "common/parallel.h"
#include "core/interval.h"
#include "core/od_matrix.h"
#include "core/rsu_state.h"

namespace {

using namespace vlm;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The seed's zero counting: a full popcount sweep over the words (the
// array did not maintain its count incrementally back then).
std::size_t sweep_zeros(const common::BitArray& bits) {
  std::size_t ones = 0;
  for (std::uint64_t w : bits.words()) {
    ones += static_cast<std::size_t>(std::popcount(w));
  }
  return bits.size() - ones;
}

// The seed decode path for one pair: materialize the combined array,
// then three independent zero-count sweeps, then Eq. 5 + interval.
core::EstimateInterval naive_pair(const core::IntervalEstimator& interval,
                                  const core::PairEstimator& estimator,
                                  const core::RsuState& x,
                                  const core::RsuState& y) {
  const core::RsuState& small = x.array_size() <= y.array_size() ? x : y;
  const core::RsuState& large = x.array_size() <= y.array_size() ? y : x;
  const std::size_t m_x = small.array_size();
  const std::size_t m_y = large.array_size();
  const common::BitArray combined =
      m_x == m_y ? small.bits() | large.bits()
                 : small.bits().unfolded(m_y) | large.bits();

  core::PairEstimate point;
  point.m_x = m_x;
  point.m_y = m_y;
  auto fraction = [&](std::size_t zeros, std::size_t size, bool& saturated) {
    if (zeros == 0) {
      saturated = true;
      return 0.5 / static_cast<double>(size);
    }
    return static_cast<double>(zeros) / static_cast<double>(size);
  };
  point.v_x = fraction(sweep_zeros(small.bits()), m_x, point.saturated);
  point.v_y = fraction(sweep_zeros(large.bits()), m_y, point.saturated);
  point.v_c = fraction(sweep_zeros(combined), m_y, point.saturated);
  point.raw = (std::log(point.v_c) - std::log(point.v_x) -
               std::log(point.v_y)) /
              estimator.log_ratio_denominator(m_y);
  point.n_c_hat = std::max(0.0, point.raw);
  core::EstimateInterval out =
      interval.annotate(point, static_cast<double>(x.counter()),
                        static_cast<double>(y.counter()));
  out.degraded = out.degraded || point.saturated;
  return out;
}

bool cells_identical(const core::OdMatrix& a, const core::OdMatrix& b) {
  for (std::size_t i = 0; i < a.rsu_count(); ++i) {
    for (std::size_t j = i + 1; j < a.rsu_count(); ++j) {
      const core::EstimateInterval& ca = a.at(i, j);
      const core::EstimateInterval& cb = b.at(i, j);
      if (ca.n_c_hat != cb.n_c_hat || ca.stddev != cb.stddev ||
          ca.lower != cb.lower || ca.upper != cb.upper ||
          ca.floor_stddev != cb.floor_stddev || ca.degraded != cb.degraded) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  common::ArgParser parser("bench_decode_throughput",
                           "fused+parallel K×K decode vs the seed serial path");
  parser.add_int("rsus", 24, "deployment size K");
  parser.add_int("m-exp", 22, "log2 of every RSU's array size");
  parser.add_int("workers", 0, "parallel decode workers (0 = one per core)");
  parser.add_int("repeat", 3, "timing repetitions (best-of)");
  if (!parser.parse(argc, argv)) return 0;

  const auto k = static_cast<std::size_t>(parser.get_int("rsus"));
  const std::size_t m = std::size_t{1}
                        << static_cast<unsigned>(parser.get_int("m-exp"));
  const int repeat = std::max(1, static_cast<int>(parser.get_int("repeat")));
  const auto workers =
      static_cast<unsigned>(std::max<std::int64_t>(0, parser.get_int("workers")));

  // Deterministic synthetic states at load factor ~8 (the paper's f̄).
  std::vector<core::RsuState> states;
  states.reserve(k);
  std::uint64_t h = 0xDEC0DEull;
  for (std::size_t r = 0; r < k; ++r) {
    core::RsuState rsu(m);
    const std::size_t records = m / 8;
    for (std::size_t i = 0; i < records; ++i) {
      rsu.record(static_cast<std::size_t>(common::mix64(++h) % m));
    }
    states.push_back(std::move(rsu));
  }

  const core::IntervalEstimator interval(2, 1.96);
  const core::PairEstimator estimator(2);

  double naive_best = 1e300, fused_serial_best = 1e300,
         fused_parallel_best = 1e300;
  core::OdMatrix serial(k, 2, 1.96), parallel(k, 2, 1.96);
  core::DecodeStats serial_stats, parallel_stats;
  double naive_total = 0.0;
  for (int rep = 0; rep < repeat; ++rep) {
    // Seed path: serial loop, materializing decode per pair.
    const auto t0 = std::chrono::steady_clock::now();
    naive_total = 0.0;
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = a + 1; b < k; ++b) {
        naive_total += naive_pair(interval, estimator, states[a], states[b])
                           .n_c_hat;
      }
    }
    naive_best = std::min(naive_best, seconds_since(t0));

    const auto t1 = std::chrono::steady_clock::now();
    serial = core::estimate_od_matrix(states, 2, 1.96, 1, &serial_stats);
    fused_serial_best = std::min(fused_serial_best, seconds_since(t1));

    const auto t2 = std::chrono::steady_clock::now();
    parallel =
        core::estimate_od_matrix(states, 2, 1.96, workers, &parallel_stats);
    fused_parallel_best = std::min(fused_parallel_best, seconds_since(t2));
  }

  const bool identical = cells_identical(serial, parallel) &&
                         naive_total == serial.total_estimated_common();
  std::printf(
      "{\"rsus\": %zu, \"m\": %zu, \"pairs\": %zu, \"workers\": %u,\n"
      " \"kernel_isa\": \"%s\",\n"
      " \"naive_serial_seconds\": %.6f,\n"
      " \"fused_serial_seconds\": %.6f,\n"
      " \"fused_parallel_seconds\": %.6f,\n"
      " \"speedup_fused_serial\": %.2f,\n"
      " \"speedup_fused_parallel\": %.2f,\n"
      " \"parallel_pairs_per_second\": %.0f,\n"
      " \"parallel_scan_mib_per_second\": %.0f,\n"
      " \"parallel_bit_identical_to_serial\": %s}\n",
      k, m, serial_stats.pairs_decoded, parallel_stats.workers,
      parallel_stats.kernel_isa, naive_best,
      fused_serial_best, fused_parallel_best, naive_best / fused_serial_best,
      naive_best / fused_parallel_best, parallel_stats.pairs_per_second(),
      parallel_stats.mib_per_second(), identical ? "true" : "false");
  return identical ? 0 : 1;
}
