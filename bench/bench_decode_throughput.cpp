// Decode-throughput bench: the seed's serial materializing decode vs the
// per-pair fused path vs the cache-blocked batch decode, on a 64-RSU
// workload at m = 2^22.
//
//   $ bench_decode_throughput                  # full-size run, JSON out
//   $ bench_decode_throughput --m-exp 14 --rsus 6 --repeat 1   # smoke
//   $ bench_decode_throughput --sweep --m-exp 16 --repeat 1    # CI sweep
//
// Emits one JSON object so CI and scripts can track the speedup:
//   - "naive_serial_seconds": per-pair unfold-copy + OR materialization +
//     three separate popcount sweeps (the decode path before the fused
//     kernel existed), run serially over all K(K-1)/2 pairs;
//   - "pairwise_serial_seconds": estimate_od_matrix, per-pair fused
//     kernel, 1 worker (the committed path before cache blocking);
//   - "blocked_serial_seconds" / "blocked_parallel_seconds": the
//     cache-blocked batch decode — asserted bit-identical to the
//     pairwise result cell by cell ("blocked_bit_identical_to_pairwise")
//     and across worker counts ("parallel_bit_identical_to_serial");
//   - with --sweep, a "sweep" array covering K ∈ {8, 24, 64} × several
//     tile sizes, each entry carrying its own identity flag, summarized
//     in "sweep_all_identical";
//   - a "pruned" section on a ring-topology SPARSE fleet (adjacent RSUs
//     share one road of common vehicles, everyone else shares none —
//     the city-scale shape where most of the K(K-1)/2 pairs carry no
//     traffic): the sampled-union pruned decode vs the exact blocked
//     sweep, with two accuracy gates — "pruned_no_dropped_pairs" (no
//     skipped pair's exact estimate exceeds the volume floor) and
//     "pruned_survivors_bit_identical" (every surviving cell equals the
//     blocked cell bit for bit).
// Exit status is 0 only if every identity/accuracy assertion held (and,
// with --min-speedup, the pruned wall-time speedup met the bar).
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/bit_array.h"
#include "common/cli.h"
#include "common/hashing.h"
#include "common/parallel.h"
#include "core/interval.h"
#include "core/od_matrix.h"
#include "core/rsu_state.h"
#include "obs/clock.h"
#include "obs/export.h"
#include "obs/health.h"
#include "obs/metrics.h"

namespace {

using namespace vlm;

// The seed's zero counting: a full popcount sweep over the words (the
// array did not maintain its count incrementally back then).
std::size_t sweep_zeros(const common::BitArray& bits) {
  std::size_t ones = 0;
  for (std::uint64_t w : bits.words()) {
    ones += static_cast<std::size_t>(std::popcount(w));
  }
  return bits.size() - ones;
}

// The seed decode path for one pair: materialize the combined array,
// then three independent zero-count sweeps, then Eq. 5 + interval.
core::EstimateInterval naive_pair(const core::IntervalEstimator& interval,
                                  const core::PairEstimator& estimator,
                                  const core::RsuState& x,
                                  const core::RsuState& y) {
  const core::RsuState& small = x.array_size() <= y.array_size() ? x : y;
  const core::RsuState& large = x.array_size() <= y.array_size() ? y : x;
  const std::size_t m_x = small.array_size();
  const std::size_t m_y = large.array_size();
  const common::BitArray combined =
      m_x == m_y ? small.bits() | large.bits()
                 : small.bits().unfolded(m_y) | large.bits();

  core::PairEstimate point;
  point.m_x = m_x;
  point.m_y = m_y;
  auto fraction = [&](std::size_t zeros, std::size_t size, bool& saturated) {
    if (zeros == 0) {
      saturated = true;
      return 0.5 / static_cast<double>(size);
    }
    return static_cast<double>(zeros) / static_cast<double>(size);
  };
  point.v_x = fraction(sweep_zeros(small.bits()), m_x, point.saturated);
  point.v_y = fraction(sweep_zeros(large.bits()), m_y, point.saturated);
  point.v_c = fraction(sweep_zeros(combined), m_y, point.saturated);
  point.raw = (std::log(point.v_c) - std::log(point.v_x) -
               std::log(point.v_y)) /
              estimator.log_ratio_denominator(m_y);
  point.n_c_hat = std::max(0.0, point.raw);
  core::EstimateInterval out =
      interval.annotate(point, static_cast<double>(x.counter()),
                        static_cast<double>(y.counter()));
  out.degraded = out.degraded || point.saturated;
  return out;
}

bool cells_identical(const core::OdMatrix& a, const core::OdMatrix& b) {
  for (std::size_t i = 0; i < a.rsu_count(); ++i) {
    for (std::size_t j = i + 1; j < a.rsu_count(); ++j) {
      const core::EstimateInterval& ca = a.at(i, j);
      const core::EstimateInterval& cb = b.at(i, j);
      if (ca.n_c_hat != cb.n_c_hat || ca.stddev != cb.stddev ||
          ca.lower != cb.lower || ca.upper != cb.upper ||
          ca.floor_stddev != cb.floor_stddev || ca.degraded != cb.degraded) {
        return false;
      }
    }
  }
  return true;
}

core::OdMatrix decode(std::span<const core::RsuState> states,
                      core::DecodeMode mode, unsigned workers,
                      std::size_t tile_words, core::DecodeStats* stats) {
  core::DecodeOptions options;
  options.workers = workers;
  options.mode = mode;
  options.tile_words = tile_words;
  return core::estimate_od_matrix(states, 2, 1.96, options, stats);
}

}  // namespace

int main(int argc, char** argv) {
  common::ArgParser parser(
      "bench_decode_throughput",
      "cache-blocked K×K decode vs the per-pair and seed serial paths");
  parser.add_int("rsus", 64, "deployment size K");
  parser.add_int("m-exp", 22, "log2 of every RSU's array size");
  parser.add_int("workers", 0, "parallel decode workers (0 = one per core)");
  parser.add_int("repeat", 3, "timing repetitions (best-of)");
  parser.add_int("tile-words", 0, "blocked-path tile size in words (0 = auto)");
  parser.add_flag("sweep", false,
                  "also sweep K in {8,24,64} x tile sizes and assert "
                  "blocked == pairwise for every combination");
  parser.add_int("prune-rsus", 0,
                 "pruned-section deployment size (0 = same as --rsus)");
  parser.add_int("prune-stride", 16,
                 "pruned-section sample stride (every Nth 8-word block)");
  parser.add_double("prune-z", 4.0,
                    "pruned-section confidence multiplier on the sampled "
                    "union");
  parser.add_double("min-volume", -1.0,
                    "pruned-section volume floor (-1 = auto: "
                    "15*sqrt(m*stride), above the sampling noise of a "
                    "zero-overlap pair)");
  parser.add_double("min-speedup", 0.0,
                    "fail unless blocked/pruned wall ratio >= this "
                    "(0 = report only)");
  if (!parser.parse(argc, argv)) return 0;

  const auto k = static_cast<std::size_t>(parser.get_int("rsus"));
  const std::size_t m = std::size_t{1}
                        << static_cast<unsigned>(parser.get_int("m-exp"));
  const int repeat = std::max(1, static_cast<int>(parser.get_int("repeat")));
  const auto workers =
      static_cast<unsigned>(std::max<std::int64_t>(0, parser.get_int("workers")));
  const auto tile_words = static_cast<std::size_t>(
      std::max<std::int64_t>(0, parser.get_int("tile-words")));
  const bool sweep = parser.get_flag("sweep");

  // Deterministic synthetic states at load factor ~8 (the paper's f̄).
  // The sweep reuses prefixes of the same fleet, so build the largest K
  // needed once.
  const std::size_t max_k = sweep ? std::max<std::size_t>(k, 64) : k;
  std::vector<core::RsuState> states;
  states.reserve(max_k);
  std::uint64_t h = 0xDEC0DEull;
  for (std::size_t r = 0; r < max_k; ++r) {
    core::RsuState rsu(m);
    const std::size_t records = m / 8;
    for (std::size_t i = 0; i < records; ++i) {
      rsu.record(static_cast<std::size_t>(common::mix64(++h) % m));
    }
    states.push_back(std::move(rsu));
  }
  const std::span<const core::RsuState> main_states(states.data(), k);

  const core::IntervalEstimator interval(2, 1.96);
  const core::PairEstimator estimator(2);

  double naive_best = 1e300, pairwise_best = 1e300, blocked_serial_best = 1e300,
         blocked_parallel_best = 1e300;
  core::OdMatrix pairwise(k), blocked_serial(k), blocked_parallel(k);
  core::DecodeStats pairwise_stats, blocked_serial_stats,
      blocked_parallel_stats;
  double naive_total = 0.0;
  for (int rep = 0; rep < repeat; ++rep) {
    // Seed path: serial loop, materializing decode per pair.
    const obs::Stopwatch t0;
    naive_total = 0.0;
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = a + 1; b < k; ++b) {
        naive_total += naive_pair(interval, estimator, states[a], states[b])
                           .n_c_hat;
      }
    }
    naive_best = std::min(naive_best, t0.seconds());

    const obs::Stopwatch t1;
    pairwise = decode(main_states, core::DecodeMode::kPairwise, 1,
                      tile_words, &pairwise_stats);
    pairwise_best = std::min(pairwise_best, t1.seconds());

    const obs::Stopwatch t2;
    blocked_serial = decode(main_states, core::DecodeMode::kBlocked, 1,
                            tile_words, &blocked_serial_stats);
    blocked_serial_best = std::min(blocked_serial_best, t2.seconds());

    const obs::Stopwatch t3;
    blocked_parallel = decode(main_states, core::DecodeMode::kBlocked, workers,
                              tile_words, &blocked_parallel_stats);
    blocked_parallel_best = std::min(blocked_parallel_best, t3.seconds());
  }

  const bool blocked_identical =
      cells_identical(pairwise, blocked_serial) &&
      naive_total == pairwise.total_estimated_common();
  const bool parallel_identical =
      cells_identical(blocked_serial, blocked_parallel);

  // Optional sweep: every (K, tile_words) combination must reproduce the
  // pairwise cells bit for bit — the blocking is a traffic optimization,
  // never an approximation.
  std::string sweep_json;
  bool sweep_identical = true;
  if (sweep) {
    static constexpr std::size_t kSweepK[] = {8, 24, 64};
    static constexpr std::size_t kSweepTiles[] = {256, 1024, 4096, 0};
    sweep_json = ",\n \"sweep\": [";
    bool first = true;
    for (const std::size_t kk : kSweepK) {
      const std::span<const core::RsuState> subset(states.data(), kk);
      core::DecodeStats ref_stats;
      const core::OdMatrix reference =
          decode(subset, core::DecodeMode::kPairwise, 1, 0, &ref_stats);
      for (const std::size_t tiles : kSweepTiles) {
        core::DecodeStats stats;
        const obs::Stopwatch ts;
        const core::OdMatrix candidate =
            decode(subset, core::DecodeMode::kBlocked, workers, tiles, &stats);
        const double elapsed = ts.seconds();
        const bool identical = cells_identical(reference, candidate);
        sweep_identical = sweep_identical && identical;
        char entry[256];
        std::snprintf(entry, sizeof entry,
                      "%s\n  {\"rsus\": %zu, \"tile_words\": %zu, "
                      "\"seconds\": %.6f, \"pairs_per_second\": %.0f, "
                      "\"identical\": %s}",
                      first ? "" : ",", kk, stats.tile_words, elapsed,
                      elapsed > 0.0
                          ? static_cast<double>(stats.pairs_decoded) / elapsed
                          : 0.0,
                      identical ? "true" : "false");
        sweep_json += entry;
        first = false;
      }
    }
    sweep_json += "\n ],\n \"sweep_all_identical\": ";
    sweep_json += sweep_identical ? "true" : "false";
  }

  // Pruned section: ring-topology sparse fleet. Each ring edge e is one
  // road of m/8 common vehicles recorded identically at RSUs e and
  // (e+1) mod pk; every RSU also carries m/8 of its own local traffic.
  // Adjacent pairs therefore share a large exact overlap while every
  // non-adjacent pair shares nothing — the workload shape where the
  // sampled-union prune should skip ~all of the K(K-1)/2 pairs and the
  // exact sweep should run only on the ring edges.
  const auto prune_rsus = static_cast<std::size_t>(
      std::max<std::int64_t>(0, parser.get_int("prune-rsus")));
  const std::size_t pk = prune_rsus == 0 ? k : prune_rsus;
  const auto prune_stride = static_cast<std::size_t>(
      std::max<std::int64_t>(1, parser.get_int("prune-stride")));
  const double prune_z = parser.get_double("prune-z");
  double min_volume = parser.get_double("min-volume");
  if (min_volume < 0.0) {
    // The z_prune-inflated upper bound of a ZERO-overlap pair lands a
    // few sqrt(m * stride) above zero (binomial noise of ~m/stride
    // sampled bits, scaled through Eq. 5's ~m/s slope); 15x clears that
    // tail so the prune actually skips the empty pairs, while staying
    // an order of magnitude below the ring edges' m/8 common vehicles.
    min_volume =
        15.0 * std::sqrt(static_cast<double>(m) *
                         static_cast<double>(prune_stride));
  }

  std::vector<core::RsuState> ring;
  ring.reserve(pk);
  for (std::size_t r = 0; r < pk; ++r) ring.emplace_back(m);
  std::uint64_t rh = 0x51AB5Eull;
  for (std::size_t r = 0; r < pk; ++r) {
    // Local traffic: vehicles seen only at this RSU.
    for (std::size_t i = 0; i < m / 8; ++i) {
      ring[r].record(static_cast<std::size_t>(common::mix64(++rh) % m));
    }
  }
  for (std::size_t e = 0; e < pk; ++e) {
    // One road per ring edge: the same vehicle hits both endpoints, so
    // the identical bit index lands in both arrays (equal sizes — the
    // hashed index is the same at both RSUs).
    const std::size_t other = (e + 1) % pk;
    for (std::size_t i = 0; i < m / 8; ++i) {
      const auto index = static_cast<std::size_t>(common::mix64(++rh) % m);
      ring[e].record(index);
      ring[other].record(index);
    }
  }

  core::DecodeOptions pruned_options;
  pruned_options.workers = workers;
  pruned_options.mode = core::DecodeMode::kPruned;
  pruned_options.tile_words = tile_words;
  pruned_options.prune.sample_stride = prune_stride;
  pruned_options.prune.z_prune = prune_z;
  pruned_options.prune.min_volume = min_volume;

  double ring_blocked_best = 1e300, pruned_best = 1e300;
  core::OdMatrix ring_blocked(pk), pruned(pk);
  core::DecodeStats ring_blocked_stats, pruned_stats;
  for (int rep = 0; rep < repeat; ++rep) {
    const obs::Stopwatch t4;
    ring_blocked = decode(ring, core::DecodeMode::kBlocked, workers,
                          tile_words, &ring_blocked_stats);
    ring_blocked_best = std::min(ring_blocked_best, t4.seconds());

    const obs::Stopwatch t5;
    pruned =
        core::estimate_od_matrix(ring, 2, 1.96, pruned_options, &pruned_stats);
    pruned_best = std::min(pruned_best, t5.seconds());
  }

  // Accuracy gates. The prune rule promises it only ever skips pairs
  // whose exact estimate is at or below the volume floor, and that the
  // survivors go through the identical blocked sweep — so a dropped
  // real pair or a drifted survivor cell is a bug, not a tolerance.
  bool pruned_no_dropped = true;
  bool pruned_survivors_identical = true;
  for (std::size_t a = 0; a < pk; ++a) {
    for (std::size_t b = a + 1; b < pk; ++b) {
      const core::EstimateInterval& exact = ring_blocked.at(a, b);
      if (!pruned.measured(a, b)) {
        pruned_no_dropped = pruned_no_dropped && exact.n_c_hat <= min_volume;
        continue;
      }
      const core::EstimateInterval& got = pruned.at(a, b);
      pruned_survivors_identical =
          pruned_survivors_identical && got.n_c_hat == exact.n_c_hat &&
          got.stddev == exact.stddev && got.lower == exact.lower &&
          got.upper == exact.upper && got.floor_stddev == exact.floor_stddev &&
          got.degraded == exact.degraded;
    }
  }
  const double pruned_speedup =
      pruned_best > 0.0 ? ring_blocked_best / pruned_best : 0.0;
  const double min_speedup = parser.get_double("min-speedup");
  const bool speedup_ok = min_speedup <= 0.0 || pruned_speedup >= min_speedup;

  // Estimator-health telemetry over the main fleet and its decoded
  // matrix: the synthetic states sit at load factor ~8, so this tracks
  // the accuracy model's predicted relative error at the paper's
  // operating point run to run.
  obs::health::HealthOptions health_options;
  health_options.s = 2;
  obs::health::HealthSummary health_summary =
      obs::health::assess_rsus(main_states, health_options);
  obs::health::assess_pairs(main_states, blocked_parallel, health_options,
                            health_summary);

  char pruned_json[768];
  std::snprintf(
      pruned_json, sizeof pruned_json,
      ",\n \"pruned\": {\"rsus\": %zu, \"pairs\": %zu, "
      "\"sample_stride\": %zu, \"prune_z\": %.1f, \"min_volume\": %.1f,\n"
      "  \"path\": \"%s\", \"storage\": \"%s\",\n"
      "  \"blocked_seconds\": %.6f, \"pruned_seconds\": %.6f,\n"
      "  \"prune_seconds\": %.6f, \"sweep_seconds\": %.6f, "
      "\"estimate_seconds\": %.6f,\n"
      "  \"pairs_skipped\": %zu, \"pairs_survived\": %zu,\n"
      "  \"speedup_pruned_over_blocked\": %.2f},\n"
      " \"pruned_no_dropped_pairs\": %s,\n"
      " \"pruned_survivors_bit_identical\": %s",
      pk, pk * (pk - 1) / 2, pruned_stats.sample_stride, prune_z, min_volume,
      pruned_stats.path, pruned_stats.storage, ring_blocked_best, pruned_best,
      pruned_stats.prune_seconds, pruned_stats.sweep_seconds,
      pruned_stats.estimate_seconds, pruned_stats.pairs_pruned,
      pruned_stats.pairs_survived, pruned_speedup,
      pruned_no_dropped ? "true" : "false",
      pruned_survivors_identical ? "true" : "false");
  sweep_json += pruned_json;

  std::printf(
      "{\"rsus\": %zu, \"m\": %zu, \"pairs\": %zu, \"workers\": %u,\n"
      " \"kernel_isa\": \"%s\",\n"
      " \"tile_words\": %zu,\n"
      " \"dram_passes_saved\": %zu,\n"
      " \"naive_serial_seconds\": %.6f,\n"
      " \"pairwise_serial_seconds\": %.6f,\n"
      " \"blocked_serial_seconds\": %.6f,\n"
      " \"blocked_parallel_seconds\": %.6f,\n"
      " \"speedup_pairwise_over_naive\": %.2f,\n"
      " \"speedup_blocked_over_pairwise\": %.2f,\n"
      " \"pairwise_pairs_per_second\": %.0f,\n"
      " \"blocked_pairs_per_second\": %.0f,\n"
      " \"blocked_scan_mib_per_second\": %.0f,\n"
      " \"pool_threads\": %u,\n"
      " \"pool_lifetime_dispatches\": %llu,\n"
      " \"blocked_bit_identical_to_pairwise\": %s,\n"
      " \"parallel_bit_identical_to_serial\": %s%s,\n"
      " \"health\": {\"rsus_assessed\": %zu, \"rsus_saturated\": %zu, "
      "\"max_fill_fraction\": %.4f, \"min_load_factor\": %.2f, "
      "\"pairs_assessed\": %zu, \"pairs_degraded\": %zu, "
      "\"predicted_rel_err_max\": %.4f, \"predicted_rel_err_mean\": %.4f},\n"
      " \"metrics\": %s}\n",
      k, m, pairwise_stats.pairs_decoded, blocked_parallel_stats.workers,
      blocked_parallel_stats.kernel_isa, blocked_serial_stats.tile_words,
      blocked_serial_stats.dram_passes_saved, naive_best, pairwise_best,
      blocked_serial_best, blocked_parallel_best, naive_best / pairwise_best,
      pairwise_best / blocked_serial_best,
      pairwise_stats.pairs_per_second(),
      blocked_serial_best > 0.0
          ? static_cast<double>(blocked_serial_stats.pairs_decoded) /
                blocked_serial_best
          : 0.0,
      blocked_serial_stats.mib_per_second(),
      blocked_parallel_stats.pool_threads,
      static_cast<unsigned long long>(
          blocked_parallel_stats.pool_lifetime_dispatches),
      blocked_identical ? "true" : "false",
      parallel_identical ? "true" : "false", sweep_json.c_str(),
      health_summary.rsus_assessed, health_summary.rsus_saturated,
      health_summary.max_fill_fraction, health_summary.min_load_factor,
      health_summary.pairs_assessed, health_summary.pairs_degraded,
      health_summary.max_predicted_rel_err,
      health_summary.mean_predicted_rel_err,
      obs::to_json(obs::MetricsRegistry::global().snapshot(), {}, 2).c_str());
  return blocked_identical && parallel_identical && sweep_identical &&
                 pruned_no_dropped && pruned_survivors_identical && speedup_ok
             ? 0
             : 1;
}
