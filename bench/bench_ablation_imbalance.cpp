// E8 — Ablations.
//
// (a) Load-factor imbalance sweep (the paper's Section VI-B narrative):
//     fix n_x = 10,000, sweep d = n_y/n_x, and report estimation error
//     and preserved privacy for FBM (one m sized by the privacy cap at
//     the lightest RSU) vs VLM (per-RSU sizing at f̄). Shows where and
//     how the baseline breaks as heterogeneity grows.
//
// (b) Slot-selection rule: the paper's literal formula selects the
//     logical slot as X[H(R_x) mod s] — a function of the RSU alone — so
//     for a fixed RSU pair either EVERY common vehicle shares its slot
//     across the two RSUs or NONE does, while the analysis (Eq. 6)
//     needs per-vehicle probability 1/s. This ablation measures both
//     readings; the literal one produces wildly bimodal estimates, which
//     is why the library defaults to the per-vehicle reading.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/estimator.h"
#include "core/pair_simulation.h"
#include "core/privacy_model.h"
#include "core/sizing.h"
#include "stats/descriptive.h"

namespace {

using namespace vlm;

double mean_abs_error(core::SlotSelection slot, std::uint32_t s,
                      const core::PairWorkload& w, std::size_t m_x,
                      std::size_t m_y, int trials, std::uint64_t seed,
                      std::uint64_t rsu_salt) {
  core::Encoder enc(core::EncoderConfig{s, 0x5EEDBA5EBA11AD00ull, slot});
  core::PairEstimator est(s);
  stats::RunningStats err;
  for (int t = 0; t < trials; ++t) {
    // Vary the RSU ids across trials so the literal rule's per-pair slot
    // collision (probability 1/s over id draws) is sampled too.
    const core::RsuId rx{common::mix64(rsu_salt + 2u * static_cast<std::uint64_t>(t))};
    const core::RsuId ry{common::mix64(rsu_salt + 2u * static_cast<std::uint64_t>(t) + 1)};
    const auto states =
        core::simulate_pair(enc, w, m_x, m_y, seed + 97u * static_cast<std::uint64_t>(t), rx, ry);
    const auto e = est.estimate(states.x, states.y);
    err.push(std::fabs(e.n_c_hat - double(w.n_c)) / double(w.n_c));
  }
  return err.mean();
}

}  // namespace

int main(int argc, char** argv) {
  common::ArgParser parser("bench_ablation_imbalance",
                           "ablations: volume imbalance and slot selection");
  parser.add_int("trials", 12, "runs per configuration");
  parser.add_int("seed", 77, "base seed");
  if (!parser.parse(argc, argv)) return 0;
  const int trials = static_cast<int>(parser.get_int("trials"));
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  const std::uint32_t s = 2;
  const std::uint64_t n_x = 10'000;
  const double f_bar = 8.0, cap = 15.0;
  const core::VlmSizingPolicy vlm_sizing(f_bar);
  const auto fbm_sizing =
      core::FbmSizingPolicy::for_min_volume(double(n_x), cap);

  std::printf("(a) imbalance sweep: n_x = %llu, n_c = 0.2 n_x, s = %u, "
              "%d trials/point\n",
              static_cast<unsigned long long>(n_x), s, trials);
  common::TextTable table({"d", "mean |err| FBM", "mean |err| VLM",
                           "privacy FBM (light RSU)", "privacy VLM"});
  for (double d : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    const auto n_y = static_cast<std::uint64_t>(d * double(n_x));
    const core::PairWorkload w{n_x, n_y, n_x / 5};
    core::Encoder enc(core::EncoderConfig{s});
    core::PairEstimator est(s);

    stats::RunningStats err_fbm, err_vlm;
    const std::size_t m_f = fbm_sizing.array_size();
    const std::size_t m_vx = vlm_sizing.array_size_for(double(n_x));
    const std::size_t m_vy = vlm_sizing.array_size_for(double(n_y));
    for (int t = 0; t < trials; ++t) {
      const auto sf = core::simulate_pair(enc, w, m_f, m_f, seed + 13u * static_cast<std::uint64_t>(t));
      const auto sv = core::simulate_pair(enc, w, m_vx, m_vy, seed + 13u * static_cast<std::uint64_t>(t));
      err_fbm.push(std::fabs(est.estimate(sf.x, sf.y).n_c_hat - double(w.n_c)) /
                   double(w.n_c));
      err_vlm.push(std::fabs(est.estimate(sv.x, sv.y).n_c_hat - double(w.n_c)) /
                   double(w.n_c));
    }
    // Privacy of the LIGHT RSU pairing: FBM runs it at load m_f/n_x... the
    // pair-level privacy formula uses both volumes.
    const double p_fbm = core::PrivacyModel::preserved_privacy(
        core::PairScenario{double(n_x), double(n_y), double(w.n_c), m_f, m_f, s});
    const double p_vlm = core::PrivacyModel::preserved_privacy(
        core::PairScenario{double(n_x), double(n_y), double(w.n_c), m_vx, m_vy, s});
    table.add_row({common::TextTable::fmt(d, 0),
                   common::TextTable::fmt_percent(err_fbm.mean(), 2),
                   common::TextTable::fmt_percent(err_vlm.mean(), 2),
                   common::TextTable::fmt(p_fbm, 3),
                   common::TextTable::fmt(p_vlm, 3)});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\n(b) slot-selection rule (d = 10, n_c = 0.2 n_x):\n");
  common::TextTable slots({"slot rule", "mean |err|"});
  const core::PairWorkload w{n_x, 10 * n_x, n_x / 5};
  const std::size_t m_x = vlm_sizing.array_size_for(double(n_x));
  const std::size_t m_y = vlm_sizing.array_size_for(10.0 * double(n_x));
  slots.add_row({"per-vehicle (default, matches Eq. 6)",
                 common::TextTable::fmt_percent(
                     mean_abs_error(core::SlotSelection::kPerVehicleUniform, s,
                                    w, m_x, m_y, 4 * trials, seed, 0xF00), 2)});
  slots.add_row({"literal per-RSU (paper text)",
                 common::TextTable::fmt_percent(
                     mean_abs_error(core::SlotSelection::kLiteralPerRsu, s, w,
                                    m_x, m_y, 4 * trials, seed, 0xF00), 2)});
  std::printf("%s", slots.to_string().c_str());
  std::printf(
      "\nThe literal rule collapses the per-vehicle slot randomness the MLE"
      "\nderivation assumes, so its estimates are bimodal (near 0 or ~s*n_c)"
      "\nand the mean error is large. See core/encoder.h.\n");

  // (c) load-factor sweep: accuracy and privacy as f̄ varies, fixed
  // workload (d = 10, n_c = 0.2 n_x). The paper picks f̄ by privacy
  // alone; this shows the accuracy side of the trade-off (estimation
  // error keeps improving past the privacy optimum f* ~ 2-4, so a
  // deployment picks the largest f̄ its privacy floor allows).
  std::printf("\n(c) load-factor trade-off (d = 10, n_c = 0.2 n_x):\n");
  common::TextTable lf({"f̄", "mean |err| VLM", "model sigma",
                        "privacy (exact)"});
  for (double f : {1.0, 2.0, 4.0, 8.0, 15.0}) {
    const core::VlmSizingPolicy sizing(f);
    const std::size_t fm_x = sizing.array_size_for(double(n_x));
    const std::size_t fm_y = sizing.array_size_for(10.0 * double(n_x));
    core::Encoder enc(core::EncoderConfig{s});
    core::PairEstimator est(s);
    stats::RunningStats err;
    const core::PairWorkload w10{n_x, 10 * n_x, n_x / 5};
    for (int t = 0; t < trials; ++t) {
      const auto sv = core::simulate_pair(
          enc, w10, fm_x, fm_y, seed + 41u * static_cast<std::uint64_t>(t));
      err.push(std::fabs(est.estimate(sv.x, sv.y).n_c_hat - double(w10.n_c)) /
               double(w10.n_c));
    }
    const core::PairScenario sc{double(n_x), 10.0 * double(n_x),
                                double(w10.n_c), fm_x, fm_y, s};
    lf.add_row({common::TextTable::fmt(f, 0),
                common::TextTable::fmt_percent(err.mean(), 2),
                common::TextTable::fmt_percent(
                    core::AccuracyModel::predict(sc).stddev_ratio, 2),
                common::TextTable::fmt(
                    core::PrivacyModel::evaluate_exact(sc).p, 3)});
  }
  std::printf("%s", lf.to_string().c_str());
  return 0;
}
