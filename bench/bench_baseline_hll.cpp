// Baseline comparison — HyperLogLog inclusion-exclusion vs the paper's
// bitmap masking, at EQUAL memory per RSU.
//
// Two questions:
//   1. Accuracy: for the same bits of RSU state, which estimator of
//      |S_x ∩ S_y| has lower error? (HLL-IE's error scales with the
//      UNION cardinality; the bitmap MLE reads the intersection signal
//      directly, so bitmap wins whenever n_c << n_x + n_y — the
//      operating regime of point-to-point traffic.)
//   2. Privacy: HLL-IE requires every RSU to insert the SAME hash for
//      the same vehicle, so the vehicle's submission is a stable
//      (bucket, rank) pseudo-identifier. We compute the fraction of
//      vehicles whose submission is UNIQUE within the period — those are
//      exactly linkable across RSUs. Under the bitmap scheme the
//      corresponding quantity is the preserved-privacy p of Section VI.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "common/hashing.h"
#include "common/table.h"
#include "core/encoder.h"
#include "core/estimator.h"
#include "core/pair_simulation.h"
#include "core/privacy_model.h"
#include "sketch/hll.h"
#include "stats/descriptive.h"

namespace {

using namespace vlm;

std::uint64_t stable_vehicle_hash(std::uint64_t seed, std::uint64_t i) {
  return common::mix64(common::mix64(seed) + (i + 1) * 0x9E3779B97F4A7C15ull);
}

}  // namespace

int main(int argc, char** argv) {
  common::ArgParser parser("bench_baseline_hll",
                           "HLL inclusion-exclusion vs bitmap masking");
  parser.add_int("trials", 12, "runs per configuration");
  parser.add_int("seed", 606, "base seed");
  if (!parser.parse(argc, argv)) return 0;
  const int trials = static_cast<int>(parser.get_int("trials"));
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  // Equal memory: bitmap m bits == HLL with m/8 one-byte registers.
  struct Case {
    const char* label;
    std::uint64_t n_x, n_y, n_c;
    std::size_t bitmap_bits;
    unsigned hll_precision;  // 8 * 2^p bits
  };
  const Case cases[] = {
      {"n=10k/10k, n_c=2k, 128Kbit", 10'000, 10'000, 2'000, 1 << 17, 14},
      {"n=10k/10k, n_c=200, 128Kbit", 10'000, 10'000, 200, 1 << 17, 14},
      {"n=10k/100k, n_c=2k, 1Mbit", 10'000, 100'000, 2'000, 1 << 20, 17},
      {"n=50k/50k, n_c=25k, 512Kbit", 50'000, 50'000, 25'000, 1 << 19, 16},
  };

  core::Encoder enc(core::EncoderConfig{});
  core::PairEstimator bitmap_est(2);

  common::TextTable table({"case", "|err| bitmap", "|err| HLL-IE",
                           "bitmap privacy p", "HLL linkable vehicles"});
  for (const Case& c : cases) {
    stats::RunningStats bitmap_err, hll_err;
    double linkable_fraction = 0.0;
    for (int t = 0; t < trials; ++t) {
      const std::uint64_t trial_seed =
          seed + 7'000u * static_cast<std::uint64_t>(t);
      // Bitmap run (protocol-exact).
      const auto states = core::simulate_pair(
          enc, core::PairWorkload{c.n_x, c.n_y, c.n_c}, c.bitmap_bits,
          c.bitmap_bits, trial_seed);
      bitmap_err.push(
          std::fabs(bitmap_est.estimate(states.x, states.y).n_c_hat -
                    double(c.n_c)) /
          double(c.n_c));

      // HLL run: same vehicle population, STABLE per-vehicle hash (the
      // requirement that breaks privacy).
      sketch::HyperLogLog hx(c.hll_precision), hy(c.hll_precision);
      for (std::uint64_t i = 0; i < c.n_x; ++i) {
        hx.add_hash(stable_vehicle_hash(trial_seed, i));
      }
      // Common vehicles are the first n_c of x's population.
      for (std::uint64_t i = 0; i < c.n_c; ++i) {
        hy.add_hash(stable_vehicle_hash(trial_seed, i));
      }
      for (std::uint64_t i = c.n_x; i < c.n_x + (c.n_y - c.n_c); ++i) {
        hy.add_hash(stable_vehicle_hash(trial_seed, i));
      }
      hll_err.push(std::fabs(sketch::HyperLogLog::intersection(hx, hy) -
                             double(c.n_c)) /
                   double(c.n_c));

      // Linkability: fraction of x's vehicles whose (bucket, rank) pair
      // is unique within the RSU's period — a tracker matching the same
      // pair at another RSU identifies the vehicle.
      if (t == 0) {
        std::vector<std::uint32_t> counts(
            std::size_t{1} << (c.hll_precision + 6), 0);
        auto key = [&](std::uint64_t h) {
          const std::size_t bucket = h >> (64 - c.hll_precision);
          const std::uint64_t suffix = h << c.hll_precision;
          const unsigned rank =
              suffix == 0 ? 64 - c.hll_precision + 1
                          : static_cast<unsigned>(std::countl_zero(suffix)) + 1;
          return (bucket << 6) | std::min(rank, 63u);
        };
        for (std::uint64_t i = 0; i < c.n_x; ++i) {
          ++counts[key(stable_vehicle_hash(trial_seed, i))];
        }
        std::uint64_t unique = 0;
        for (std::uint64_t i = 0; i < c.n_x; ++i) {
          if (counts[key(stable_vehicle_hash(trial_seed, i))] == 1) ++unique;
        }
        linkable_fraction = double(unique) / double(c.n_x);
      }
    }
    const double p = core::PrivacyModel::evaluate_exact(core::PairScenario{
        double(c.n_x), double(c.n_y), double(c.n_c), c.bitmap_bits,
        c.bitmap_bits, 2}).p;
    table.add_row({c.label,
                   common::TextTable::fmt_percent(bitmap_err.mean(), 2),
                   common::TextTable::fmt_percent(hll_err.mean(), 2),
                   common::TextTable::fmt(p, 3),
                   common::TextTable::fmt_percent(linkable_fraction, 1)});
  }
  std::printf("HLL-IE vs bitmap masking at equal memory (%d trials):\n%s",
              trials, table.to_string().c_str());
  std::printf(
      "\n'HLL linkable vehicles': share of vehicles whose (bucket, rank)\n"
      "submission is unique at the RSU — matching it at another RSU links\n"
      "the trip. The bitmap scheme's replies are single masked bit indices\n"
      "with preserved privacy p (Section VI); HLL-IE trades privacy away\n"
      "and is STILL less accurate in the small-intersection regime.\n");
  return 0;
}
