// Encode-throughput bench: the serial vehicle-at-a-time protocol ingest
// vs the sharded parallel engine (drive_vehicles), on a Zipf multi-RSU
// workload, plus the raw batch-encode kernel (Encoder::bit_indices into a
// ShardedBitArray) isolated from the protocol.
//
//   $ bench_encode_throughput                                  # 24 RSUs, 1M vehicles
//   $ bench_encode_throughput --rsus 6 --vehicles 20000 --repeat 1   # smoke
//
// Emits one JSON object so CI and scripts can track the speedup:
//   - "serial_seconds": drive_vehicle per vehicle (the pre-engine path);
//   - "sharded_serial_seconds": drive_vehicles with 1 worker;
//   - "sharded_parallel_seconds": drive_vehicles with one worker per core
//     — asserted report-identical (bits AND counters) to both runs above;
//   - "batch_*": drive_vehicles through the columnar batch pipeline
//     (IngestMode::kBatch), serial and parallel, with a
//     "batch_bit_identical_to_serial" flag that covers every checked
//     worker count;
//   - "raw_*": the protocol-free encode kernel on the largest RSU.
// Exits non-zero if any run's reports disagree.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "common/bit_array.h"
#include "common/cli.h"
#include "common/parallel.h"
#include "common/visited_mask.h"
#include "core/pair_simulation.h"
#include "obs/clock.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "traffic/multi_rsu_workload.h"
#include "vcps/simulation.h"

namespace {

using namespace vlm;

bool reports_identical(const vcps::VcpsSimulation& a,
                       const vcps::VcpsSimulation& b) {
  if (a.rsu_count() != b.rsu_count()) return false;
  for (std::size_t r = 0; r < a.rsu_count(); ++r) {
    const vcps::RsuReport ra = a.rsu(r).make_report(a.current_period());
    const vcps::RsuReport rb = b.rsu(r).make_report(b.current_period());
    if (ra.counter != rb.counter || ra.array_size != rb.array_size ||
        ra.bits != rb.bits) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  common::ArgParser parser("bench_encode_throughput",
                           "sharded parallel ingest vs the serial encode path");
  parser.add_int("rsus", 24, "deployment size K (zipf workload)");
  parser.add_int("vehicles", 1'000'000, "vehicles per period");
  parser.add_int("workers", 0, "ingest workers (0 = one per core)");
  parser.add_double("load-factor", 8.0, "VLM load factor f̄");
  parser.add_int("repeat", 3, "timing repetitions (best-of)");
  parser.add_int("seed", 7, "workload + simulation seed");
  if (!parser.parse(argc, argv)) return 0;

  const auto k = static_cast<std::size_t>(parser.get_int("rsus"));
  const auto vehicles = static_cast<std::uint64_t>(parser.get_int("vehicles"));
  const unsigned workers =
      parser.get_int("workers") == 0
          ? common::default_worker_count()
          : static_cast<unsigned>(parser.get_int("workers"));
  const int repeat = std::max(1, static_cast<int>(parser.get_int("repeat")));
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  traffic::MultiRsuConfig workload_config;
  workload_config.rsu_count = k;
  workload_config.vehicle_count = vehicles;
  workload_config.seed = seed;
  traffic::MultiRsuWorkload workload(workload_config);
  // Ground-truth pass (untimed) for the per-site history volumes.
  workload.for_each_vehicle([](std::uint64_t, std::span<const std::uint32_t>) {});

  vcps::SimulationConfig sim_config;
  sim_config.seed = seed;
  sim_config.server.scheme = core::make_vlm_scheme(
      {.s = 2, .load_factor = parser.get_double("load-factor")});
  std::vector<vcps::RsuSite> sites;
  for (std::size_t r = 0; r < k; ++r) {
    sites.push_back(vcps::RsuSite{
        core::RsuId{r + 1},
        static_cast<double>(workload.node_volumes()[r])});
  }

  const vcps::ItineraryProvider provider =
      [&workload, k](std::uint64_t v, std::vector<std::size_t>& positions) {
        thread_local common::VisitedMask visited(0);
        thread_local std::vector<std::uint32_t> rsus;
        if (visited.universe_size() != k) visited = common::VisitedMask(k);
        workload.itinerary(v, visited, rsus);
        positions.assign(rsus.begin(), rsus.end());
      };

  // Native CSR bulk form for the batch runs: one provider call per worker
  // slice, no per-vehicle std::function hop or positions copy.
  const vcps::BulkItineraryProvider bulk_provider =
      [&workload, k](std::uint64_t begin, std::uint64_t end,
                     common::UninitVector<std::uint32_t>& positions,
                     std::vector<std::uint64_t>& offsets,
                     std::vector<std::uint64_t>& counts) {
        thread_local common::VisitedMask visited(0);
        if (visited.universe_size() != k) visited = common::VisitedMask(k);
        workload.itineraries(begin, end, visited, positions, offsets, counts);
      };

  // One full measurement period through the serial vehicle-at-a-time path.
  auto run_serial = [&](double& seconds) {
    auto sim = std::make_unique<vcps::VcpsSimulation>(sim_config, sites);
    sim->begin_period();
    common::VisitedMask visited(k);
    std::vector<std::uint32_t> rsus;
    std::vector<std::size_t> positions;
    const obs::Stopwatch t0;
    for (std::uint64_t v = 0; v < vehicles; ++v) {
      workload.itinerary(v, visited, rsus);
      positions.assign(rsus.begin(), rsus.end());
      sim->drive_vehicle(positions);
    }
    seconds = t0.seconds();
    sim->end_period();
    return sim;
  };

  // Same period through the sharded engine, with the per-slice engine
  // pinned explicitly so "sharded_*" stays comparable across releases
  // (always the per-vehicle scalar loop) while "batch_*" measures the
  // columnar pipeline.
  // Scalar runs keep the per-vehicle provider for comparability with the
  // pre-refactor releases; batch runs feed the bulk CSR form the pipeline
  // is designed around (a test pins that the two forms are bit-identical).
  auto run_sharded = [&](unsigned w, vcps::IngestMode mode, double& seconds,
                         vcps::IngestStats* stats_out,
                         vcps::PipelineMode pipeline =
                             vcps::PipelineMode::kAuto) {
    auto sim = std::make_unique<vcps::VcpsSimulation>(sim_config, sites);
    sim->begin_period();
    const obs::Stopwatch t0;
    const vcps::IngestStats stats =
        mode == vcps::IngestMode::kBatch
            ? sim->drive_vehicles(vehicles, bulk_provider, w, mode, pipeline)
            : sim->drive_vehicles(vehicles, provider, w, mode, pipeline);
    seconds = t0.seconds();
    sim->end_period();
    if (stats_out != nullptr) *stats_out = stats;
    return sim;
  };

  double serial_best = 1e300, sharded_serial_best = 1e300,
         sharded_parallel_best = 1e300, batch_serial_best = 1e300,
         batch_parallel_best = 1e300;
  std::unique_ptr<vcps::VcpsSimulation> serial, sharded1, shardedN, batchN;
  vcps::IngestStats parallel_stats, batch_stats;
  for (int rep = 0; rep < repeat; ++rep) {
    double s = 0.0;
    serial = run_serial(s);
    serial_best = std::min(serial_best, s);
    sharded1 = run_sharded(1, vcps::IngestMode::kScalar, s, nullptr);
    sharded_serial_best = std::min(sharded_serial_best, s);
    shardedN = run_sharded(workers, vcps::IngestMode::kScalar, s,
                           &parallel_stats);
    sharded_parallel_best = std::min(sharded_parallel_best, s);
    run_sharded(1, vcps::IngestMode::kBatch, s, nullptr);
    batch_serial_best = std::min(batch_serial_best, s);
    batchN = run_sharded(workers, vcps::IngestMode::kBatch, s, &batch_stats);
    batch_parallel_best = std::min(batch_parallel_best, s);
  }
  const bool identical = reports_identical(*serial, *sharded1) &&
                         reports_identical(*serial, *shardedN);

  // Batch acceptance gate: for EVERY checked worker count, the columnar
  // engine's reports must equal the serial per-vehicle path bit for bit.
  bool batch_identical = reports_identical(*serial, *batchN);
  for (const unsigned w : {1u, 2u, std::max(2u, workers / 2)}) {
    double s = 0.0;
    const auto batch_w = run_sharded(w, vcps::IngestMode::kBatch, s, nullptr);
    batch_identical = batch_identical && reports_identical(*serial, *batch_w);
  }

  // Pipeline acceptance gate: the overlap schedule (and the off schedule
  // it must match) produce serial-identical reports at every checked
  // worker count — the stage schedule is a pure locality decision.
  bool pipelined_identical = true;
  for (const auto pipeline :
       {vcps::PipelineMode::kOff, vcps::PipelineMode::kOverlap}) {
    for (const unsigned w : {1u, 2u, std::max(2u, workers / 2)}) {
      double s = 0.0;
      const auto batch_w =
          run_sharded(w, vcps::IngestMode::kBatch, s, nullptr, pipeline);
      pipelined_identical =
          pipelined_identical && reports_identical(*serial, *batch_w);
    }
  }

  // Raw kernel: batch-encode every vehicle against the busiest RSU —
  // serial bit_index + set() vs per-worker bit_indices + set_bulk() into
  // ShardedBitArray shards.
  std::vector<core::VehicleIdentity> identities(vehicles);
  for (std::uint64_t v = 0; v < vehicles; ++v) {
    identities[v] = core::synthetic_vehicle(seed, v + 1);
  }
  const core::Encoder& encoder = serial->encoder();
  const core::RsuId raw_rsu{1};  // zipf rank 0: the largest array
  const core::EncodeTarget target(serial->rsu(0).state().array_size());

  double raw_serial_best = 1e300, raw_parallel_best = 1e300;
  common::BitArray raw_serial_bits(target.array_size());
  common::BitArray raw_parallel_bits(target.array_size());
  for (int rep = 0; rep < repeat; ++rep) {
    common::BitArray bits(target.array_size());
    const obs::Stopwatch t0;
    for (const core::VehicleIdentity& v : identities) {
      bits.set(encoder.bit_index(v, raw_rsu, target));
    }
    raw_serial_best = std::min(raw_serial_best, t0.seconds());
    raw_serial_bits = bits;

    common::ShardedBitArray sharded(target.array_size(), workers);
    const obs::Stopwatch t1;
    common::parallel_slices(
        identities.size(), workers,
        [&](unsigned worker, std::size_t begin, std::size_t end) {
          constexpr std::size_t kChunk = 8192;
          std::vector<std::size_t> indices(kChunk);
          common::BitArray& shard = sharded.shard(worker);
          for (std::size_t i = begin; i < end; i += kChunk) {
            const std::size_t len = std::min(kChunk, end - i);
            const std::span<std::size_t> out(indices.data(), len);
            encoder.bit_indices(
                std::span<const core::VehicleIdentity>(&identities[i], len),
                raw_rsu, target, out);
            shard.set_bulk(out);
          }
        });
    raw_parallel_bits = sharded.merged();
    raw_parallel_best = std::min(raw_parallel_best, t1.seconds());
  }
  const bool raw_identical = raw_serial_bits == raw_parallel_bits;

  // Flight-recorder disabled-overhead bound. Every instrumented site
  // compiles down to one relaxed load of the trace-enabled flag when the
  // recorder is off (the state all the timed runs above executed in).
  // Measure that per-check cost directly, count the checks a parallel
  // batch period performs (four per-stage scopes per 16 Ki-vehicle
  // sub-slice, plus the Span sites and the pool queue-wait probes), and
  // bound the fraction of the timed run they can account for. The gate
  // feeds the exit status: instrumentation that stops being free when
  // disabled fails the bench.
  double trace_scope_ns = 0.0;
  {
    constexpr int kProbes = 1 << 21;
    const obs::Stopwatch tp;
    for (int i = 0; i < kProbes; ++i) {
      const obs::trace::TraceScope probe("bench/noop");
      (void)probe;
    }
    trace_scope_ns = tp.seconds() * 1e9 / static_cast<double>(kProbes);
  }
  const double trace_sub_slices =
      std::ceil(static_cast<double>(vehicles) / 16384.0) +
      static_cast<double>(workers);
  const double trace_checks = 4.0 * trace_sub_slices +
                              16.0 * static_cast<double>(workers) + 64.0;
  const double trace_disabled_overhead =
      batch_parallel_best > 0.0
          ? trace_checks * trace_scope_ns * 1e-9 / batch_parallel_best
          : 0.0;
  const bool trace_overhead_ok = trace_disabled_overhead < 0.02;

  const auto per_sec = [&](double seconds) {
    return static_cast<double>(vehicles) / seconds;
  };
  // Per-stage throughput from the timed parallel batch run (stage
  // seconds are summed across workers, so this is the aggregate rate the
  // stage sustained over the period), and the overlap-efficiency ratio:
  // the fraction of the sub-slice loop spent inside stage work. A stage
  // the channel skips entirely (loss-free) reports 0 rather than inf.
  const auto stage_per_sec = [&](double seconds) {
    return seconds > 0.0 ? static_cast<double>(vehicles) / seconds : 0.0;
  };
  const double stage_total_seconds =
      batch_stats.materialize_seconds + batch_stats.hash_seconds +
      batch_stats.channel_seconds + batch_stats.scatter_seconds;
  const double overlap_efficiency =
      batch_stats.pipeline_seconds > 0.0
          ? stage_total_seconds / batch_stats.pipeline_seconds
          : 0.0;
  std::printf(
      "{\"rsus\": %zu, \"vehicles\": %llu, \"workers\": %u, \"exchanges\": "
      "%llu,\n"
      " \"kernel_isa\": \"%s\",\n"
      " \"serial_seconds\": %.6f,\n"
      " \"sharded_serial_seconds\": %.6f,\n"
      " \"sharded_parallel_seconds\": %.6f,\n"
      " \"speedup_sharded_serial\": %.2f,\n"
      " \"speedup_sharded_parallel\": %.2f,\n"
      " \"serial_vehicles_per_second\": %.0f,\n"
      " \"parallel_vehicles_per_second\": %.0f,\n"
      " \"batch_serial_seconds\": %.6f,\n"
      " \"batch_parallel_seconds\": %.6f,\n"
      " \"speedup_batch_serial\": %.2f,\n"
      " \"speedup_batch_parallel\": %.2f,\n"
      " \"batch_vehicles_per_second\": %.0f,\n"
      " \"batch_pipeline\": \"%s\",\n"
      " \"batch_stage_seconds\": {\"materialize\": %.6f, \"hash\": %.6f, "
      "\"channel\": %.6f, \"scatter\": %.6f},\n"
      " \"batch_stage_vehicles_per_second\": {\"materialize\": %.0f, "
      "\"hash\": %.0f, \"channel\": %.0f, \"scatter\": %.0f},\n"
      " \"pipeline_overlap_efficiency\": %.3f,\n"
      " \"trace_disabled_scope_ns\": %.3f,\n"
      " \"trace_disabled_overhead\": %.6f,\n"
      " \"trace_disabled_overhead_ok\": %s,\n"
      " \"raw_encode_serial_seconds\": %.6f,\n"
      " \"raw_encode_parallel_seconds\": %.6f,\n"
      " \"raw_encode_parallel_vehicles_per_second\": %.0f,\n"
      " \"reports_bit_identical\": %s,\n"
      " \"batch_bit_identical_to_serial\": %s,\n"
      " \"pipelined_bit_identical_to_serial\": %s,\n"
      " \"raw_bits_identical\": %s,\n"
      " \"metrics\": %s}\n",
      k, static_cast<unsigned long long>(vehicles), parallel_stats.workers,
      static_cast<unsigned long long>(parallel_stats.exchanges),
      parallel_stats.kernel_isa, serial_best,
      sharded_serial_best, sharded_parallel_best,
      serial_best / sharded_serial_best, serial_best / sharded_parallel_best,
      per_sec(serial_best), per_sec(sharded_parallel_best), batch_serial_best,
      batch_parallel_best, serial_best / batch_serial_best,
      serial_best / batch_parallel_best, per_sec(batch_parallel_best),
      batch_stats.pipeline,
      batch_stats.materialize_seconds, batch_stats.hash_seconds,
      batch_stats.channel_seconds, batch_stats.scatter_seconds,
      stage_per_sec(batch_stats.materialize_seconds),
      stage_per_sec(batch_stats.hash_seconds),
      stage_per_sec(batch_stats.channel_seconds),
      stage_per_sec(batch_stats.scatter_seconds), overlap_efficiency,
      trace_scope_ns, trace_disabled_overhead,
      trace_overhead_ok ? "true" : "false",
      raw_serial_best, raw_parallel_best, per_sec(raw_parallel_best),
      identical ? "true" : "false", batch_identical ? "true" : "false",
      pipelined_identical ? "true" : "false", raw_identical ? "true" : "false",
      obs::to_json(obs::MetricsRegistry::global().snapshot(), {}, 2).c_str());
  return identical && batch_identical && pipelined_identical &&
                 raw_identical && trace_overhead_ok
             ? 0
             : 1;
}
