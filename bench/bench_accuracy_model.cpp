// E7 — Section V validation: analytical bias/stddev vs Monte Carlo.
//
// For a grid of scenarios, runs R protocol-exact simulations and compares
// the empirical mean and standard deviation of n̂_c/n_c against BOTH
// analytical models: the paper's published Eqs. 25-36 (binomial zero
// counts) and this library's occupancy-exact correction. Reproduction
// finding: the paper's formula over-predicts the spread several-fold at
// healthy load factors because zero counts are not binomial (each vehicle
// sets exactly one bit) and because V_c's fluctuations largely cancel
// against V_x, V_y in the estimator. The occupancy-exact model matches
// simulation closely everywhere.
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "common/parallel.h"
#include "common/table.h"
#include "core/accuracy_model.h"
#include "core/estimator.h"
#include "core/pair_simulation.h"
#include "stats/descriptive.h"

int main(int argc, char** argv) {
  using namespace vlm;
  common::ArgParser parser("bench_accuracy_model",
                           "Section V analytical accuracy vs simulation");
  parser.add_int("trials", 80, "Monte-Carlo runs per scenario");
  parser.add_int("seed", 31, "base seed");
  if (!parser.parse(argc, argv)) return 0;
  const int trials = static_cast<int>(parser.get_int("trials"));
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  struct Case {
    const char* label;
    core::PairScenario sc;
  };
  const std::vector<Case> cases = {
      {"equal, f=13", {10'000, 10'000, 2'000, 1 << 17, 1 << 17, 2}},
      {"equal, small n_c", {10'000, 10'000, 500, 1 << 17, 1 << 17, 2}},
      {"d=10", {10'000, 100'000, 2'000, 1 << 17, 1 << 20, 2}},
      {"d=10, s=5", {10'000, 100'000, 2'000, 1 << 17, 1 << 20, 5}},
      {"d=50", {10'000, 500'000, 2'000, 1 << 17, 1 << 22, 2}},
      {"FBM-starved d=50", {10'000, 500'000, 2'000, 1 << 17, 1 << 17, 2}},
      {"tight arrays f=3", {10'000, 10'000, 1'000, 1 << 15, 1 << 15, 2}},
  };

  common::TextTable table({"scenario", "bias(sim)", "bias(paper)",
                           "bias(exact)", "sd(sim)", "sd(paper)",
                           "sd(exact)", "sd paper/sim", "sd exact/sim"});
  for (const Case& c : cases) {
    core::Encoder enc(core::EncoderConfig{c.sc.s});
    core::PairEstimator est(c.sc.s);
    // Trials are independent and per-index seeded; run them across cores
    // (results identical to the sequential loop by construction).
    std::vector<double> trial_ratios(static_cast<std::size_t>(trials));
    common::parallel_for(
        trial_ratios.size(), common::default_worker_count(),
        [&](std::size_t t) {
          const auto states = core::simulate_pair(
              enc,
              core::PairWorkload{static_cast<std::uint64_t>(c.sc.n_x),
                                 static_cast<std::uint64_t>(c.sc.n_y),
                                 static_cast<std::uint64_t>(c.sc.n_c)},
              c.sc.m_x, c.sc.m_y,
              seed + 1000u * static_cast<std::uint64_t>(t));
          trial_ratios[t] = est.estimate(states.x, states.y).n_c_hat / c.sc.n_c;
        });
    stats::RunningStats ratios;
    for (double r : trial_ratios) ratios.push(r);
    const auto paper =
        core::AccuracyModel::predict(c.sc, core::VarianceModel::kPaperBinomial);
    const auto exact = core::AccuracyModel::predict(
        c.sc, core::VarianceModel::kOccupancyExact);
    table.add_row({c.label, common::TextTable::fmt(ratios.mean() - 1.0, 4),
                   common::TextTable::fmt(paper.bias_ratio, 4),
                   common::TextTable::fmt(exact.bias_ratio, 4),
                   common::TextTable::fmt(ratios.stddev(), 4),
                   common::TextTable::fmt(paper.stddev_ratio, 4),
                   common::TextTable::fmt(exact.stddev_ratio, 4),
                   common::TextTable::fmt(paper.stddev_ratio / ratios.stddev(), 2),
                   common::TextTable::fmt(exact.stddev_ratio / ratios.stddev(), 2)});
  }
  std::printf("Section V validation (%d trials/scenario):\n%s", trials,
              table.to_string().c_str());
  std::printf(
      "\n'paper' = Eqs. 25-36 as published (binomial U). 'exact' = occupancy-"
      "exact second moments.\nA healthy model has sd/sim ratio ~1.0.\n");
  return 0;
}
