// E4 — Figure 4: measurement accuracy of the FBM baseline (ref. [9]).
//
// One global bit-array size m for every RSU, bounded by the privacy rule
// m <= privacy_cap * n_min (n_min = n_x here), i.e. the largest power of
// two not exceeding 15 * 10,000 -> 2^17 for the defaults. The three plots
// reproduce n_y = n_x, 10 n_x, 50 n_x. Expected shape: near-perfect for
// equal volumes, visibly degraded at 10x, scattered at 50x (B_y is ~98%
// full).
#include <cinttypes>
#include <cstdio>

#include "core/sizing.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace vlm;
  auto parser = bench::make_figure_parser(
      "bench_fig4_fbm_accuracy",
      "Figure 4: accuracy scatter of the fixed-length baseline (FBM)");
  parser.add_double("privacy-cap", 15.0,
                    "max load factor at the lightest RSU (privacy >= 0.5)");
  if (!parser.parse(argc, argv)) return 0;
  const auto config = bench::figure_config_from(parser);
  const double cap = parser.get_double("privacy-cap");

  std::printf("Figure 4 reproduction: FBM baseline, s = %u\n", config.s);
  const auto sizing = [&](double n_x, double /*n_y*/) {
    const auto policy = core::FbmSizingPolicy::for_min_volume(n_x, cap);
    return std::make_pair(policy.array_size(), policy.array_size());
  };
  for (double ratio : {1.0, 10.0, 50.0}) {
    bench::run_accuracy_plot(config, ratio, sizing,
                             "fig4_ratio" + std::to_string(int(ratio)));
  }
  return 0;
}
