add_test([=[Umbrella.PublicApiIsReachable]=]  /root/repo/build/tests/umbrella_test [==[--gtest_filter=Umbrella.PublicApiIsReachable]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Umbrella.PublicApiIsReachable]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_test_TESTS Umbrella.PublicApiIsReachable)
