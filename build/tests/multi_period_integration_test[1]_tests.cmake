add_test([=[MultiPeriodIntegration.FivePeriodsStayHealthy]=]  /root/repo/build/tests/multi_period_integration_test [==[--gtest_filter=MultiPeriodIntegration.FivePeriodsStayHealthy]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[MultiPeriodIntegration.FivePeriodsStayHealthy]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  multi_period_integration_test_TESTS MultiPeriodIntegration.FivePeriodsStayHealthy)
