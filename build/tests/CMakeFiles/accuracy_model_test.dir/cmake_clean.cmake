file(REMOVE_RECURSE
  "CMakeFiles/accuracy_model_test.dir/core/accuracy_model_test.cpp.o"
  "CMakeFiles/accuracy_model_test.dir/core/accuracy_model_test.cpp.o.d"
  "accuracy_model_test"
  "accuracy_model_test.pdb"
  "accuracy_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
