# Empty compiler generated dependencies file for accuracy_model_test.
# This may be replaced when dependencies are built.
