file(REMOVE_RECURSE
  "CMakeFiles/trip_table_test.dir/roadnet/trip_table_test.cpp.o"
  "CMakeFiles/trip_table_test.dir/roadnet/trip_table_test.cpp.o.d"
  "trip_table_test"
  "trip_table_test.pdb"
  "trip_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trip_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
