# Empty dependencies file for trip_table_test.
# This may be replaced when dependencies are built.
