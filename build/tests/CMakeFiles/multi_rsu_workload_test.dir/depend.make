# Empty dependencies file for multi_rsu_workload_test.
# This may be replaced when dependencies are built.
