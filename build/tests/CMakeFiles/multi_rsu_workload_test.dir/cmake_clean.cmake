file(REMOVE_RECURSE
  "CMakeFiles/multi_rsu_workload_test.dir/traffic/multi_rsu_workload_test.cpp.o"
  "CMakeFiles/multi_rsu_workload_test.dir/traffic/multi_rsu_workload_test.cpp.o.d"
  "multi_rsu_workload_test"
  "multi_rsu_workload_test.pdb"
  "multi_rsu_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_rsu_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
