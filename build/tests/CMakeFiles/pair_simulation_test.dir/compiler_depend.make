# Empty compiler generated dependencies file for pair_simulation_test.
# This may be replaced when dependencies are built.
