file(REMOVE_RECURSE
  "CMakeFiles/pair_simulation_test.dir/core/pair_simulation_test.cpp.o"
  "CMakeFiles/pair_simulation_test.dir/core/pair_simulation_test.cpp.o.d"
  "pair_simulation_test"
  "pair_simulation_test.pdb"
  "pair_simulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pair_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
