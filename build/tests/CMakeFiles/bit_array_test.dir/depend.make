# Empty dependencies file for bit_array_test.
# This may be replaced when dependencies are built.
