file(REMOVE_RECURSE
  "CMakeFiles/protocol_equivalence_test.dir/vcps/protocol_equivalence_test.cpp.o"
  "CMakeFiles/protocol_equivalence_test.dir/vcps/protocol_equivalence_test.cpp.o.d"
  "protocol_equivalence_test"
  "protocol_equivalence_test.pdb"
  "protocol_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
