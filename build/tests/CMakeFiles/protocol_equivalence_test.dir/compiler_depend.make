# Empty compiler generated dependencies file for protocol_equivalence_test.
# This may be replaced when dependencies are built.
