file(REMOVE_RECURSE
  "CMakeFiles/synthetic_city_test.dir/roadnet/synthetic_city_test.cpp.o"
  "CMakeFiles/synthetic_city_test.dir/roadnet/synthetic_city_test.cpp.o.d"
  "synthetic_city_test"
  "synthetic_city_test.pdb"
  "synthetic_city_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_city_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
