# Empty dependencies file for report_validator_test.
# This may be replaced when dependencies are built.
