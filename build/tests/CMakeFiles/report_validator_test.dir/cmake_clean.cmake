file(REMOVE_RECURSE
  "CMakeFiles/report_validator_test.dir/core/report_validator_test.cpp.o"
  "CMakeFiles/report_validator_test.dir/core/report_validator_test.cpp.o.d"
  "report_validator_test"
  "report_validator_test.pdb"
  "report_validator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
