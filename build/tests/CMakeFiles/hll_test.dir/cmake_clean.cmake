file(REMOVE_RECURSE
  "CMakeFiles/hll_test.dir/sketch/hll_test.cpp.o"
  "CMakeFiles/hll_test.dir/sketch/hll_test.cpp.o.d"
  "hll_test"
  "hll_test.pdb"
  "hll_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
