# Empty dependencies file for hll_test.
# This may be replaced when dependencies are built.
