file(REMOVE_RECURSE
  "CMakeFiles/vehicle_rsu_test.dir/vcps/vehicle_rsu_test.cpp.o"
  "CMakeFiles/vehicle_rsu_test.dir/vcps/vehicle_rsu_test.cpp.o.d"
  "vehicle_rsu_test"
  "vehicle_rsu_test.pdb"
  "vehicle_rsu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vehicle_rsu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
