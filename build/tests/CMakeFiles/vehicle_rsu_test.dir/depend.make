# Empty dependencies file for vehicle_rsu_test.
# This may be replaced when dependencies are built.
