file(REMOVE_RECURSE
  "CMakeFiles/union_estimator_test.dir/core/union_estimator_test.cpp.o"
  "CMakeFiles/union_estimator_test.dir/core/union_estimator_test.cpp.o.d"
  "union_estimator_test"
  "union_estimator_test.pdb"
  "union_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/union_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
