file(REMOVE_RECURSE
  "CMakeFiles/privacy_mc_test.dir/core/privacy_mc_test.cpp.o"
  "CMakeFiles/privacy_mc_test.dir/core/privacy_mc_test.cpp.o.d"
  "privacy_mc_test"
  "privacy_mc_test.pdb"
  "privacy_mc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_mc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
