# Empty dependencies file for privacy_mc_test.
# This may be replaced when dependencies are built.
