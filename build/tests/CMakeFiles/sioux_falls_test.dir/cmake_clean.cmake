file(REMOVE_RECURSE
  "CMakeFiles/sioux_falls_test.dir/roadnet/sioux_falls_test.cpp.o"
  "CMakeFiles/sioux_falls_test.dir/roadnet/sioux_falls_test.cpp.o.d"
  "sioux_falls_test"
  "sioux_falls_test.pdb"
  "sioux_falls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sioux_falls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
