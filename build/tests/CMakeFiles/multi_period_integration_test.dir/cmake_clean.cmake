file(REMOVE_RECURSE
  "CMakeFiles/multi_period_integration_test.dir/vcps/multi_period_integration_test.cpp.o"
  "CMakeFiles/multi_period_integration_test.dir/vcps/multi_period_integration_test.cpp.o.d"
  "multi_period_integration_test"
  "multi_period_integration_test.pdb"
  "multi_period_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_period_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
