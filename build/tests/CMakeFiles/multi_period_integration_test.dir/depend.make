# Empty dependencies file for multi_period_integration_test.
# This may be replaced when dependencies are built.
