file(REMOVE_RECURSE
  "CMakeFiles/estimator_eval_test.dir/stats/estimator_eval_test.cpp.o"
  "CMakeFiles/estimator_eval_test.dir/stats/estimator_eval_test.cpp.o.d"
  "estimator_eval_test"
  "estimator_eval_test.pdb"
  "estimator_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
