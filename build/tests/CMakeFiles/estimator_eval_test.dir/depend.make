# Empty dependencies file for estimator_eval_test.
# This may be replaced when dependencies are built.
