file(REMOVE_RECURSE
  "CMakeFiles/cli_fuzz_test.dir/common/cli_fuzz_test.cpp.o"
  "CMakeFiles/cli_fuzz_test.dir/common/cli_fuzz_test.cpp.o.d"
  "cli_fuzz_test"
  "cli_fuzz_test.pdb"
  "cli_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
