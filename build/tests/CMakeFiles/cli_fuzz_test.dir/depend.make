# Empty dependencies file for cli_fuzz_test.
# This may be replaced when dependencies are built.
