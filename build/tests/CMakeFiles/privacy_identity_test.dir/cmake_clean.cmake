file(REMOVE_RECURSE
  "CMakeFiles/privacy_identity_test.dir/core/privacy_identity_test.cpp.o"
  "CMakeFiles/privacy_identity_test.dir/core/privacy_identity_test.cpp.o.d"
  "privacy_identity_test"
  "privacy_identity_test.pdb"
  "privacy_identity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_identity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
