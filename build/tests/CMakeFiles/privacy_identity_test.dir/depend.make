# Empty dependencies file for privacy_identity_test.
# This may be replaced when dependencies are built.
