# Empty compiler generated dependencies file for bit_array_property_test.
# This may be replaced when dependencies are built.
