file(REMOVE_RECURSE
  "CMakeFiles/bit_array_property_test.dir/common/bit_array_property_test.cpp.o"
  "CMakeFiles/bit_array_property_test.dir/common/bit_array_property_test.cpp.o.d"
  "bit_array_property_test"
  "bit_array_property_test.pdb"
  "bit_array_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bit_array_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
