file(REMOVE_RECURSE
  "CMakeFiles/central_server_test.dir/vcps/central_server_test.cpp.o"
  "CMakeFiles/central_server_test.dir/vcps/central_server_test.cpp.o.d"
  "central_server_test"
  "central_server_test.pdb"
  "central_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/central_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
