# Empty compiler generated dependencies file for central_server_test.
# This may be replaced when dependencies are built.
