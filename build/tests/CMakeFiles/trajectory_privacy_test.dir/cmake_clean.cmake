file(REMOVE_RECURSE
  "CMakeFiles/trajectory_privacy_test.dir/core/trajectory_privacy_test.cpp.o"
  "CMakeFiles/trajectory_privacy_test.dir/core/trajectory_privacy_test.cpp.o.d"
  "trajectory_privacy_test"
  "trajectory_privacy_test.pdb"
  "trajectory_privacy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_privacy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
