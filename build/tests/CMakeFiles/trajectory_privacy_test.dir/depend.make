# Empty dependencies file for trajectory_privacy_test.
# This may be replaced when dependencies are built.
