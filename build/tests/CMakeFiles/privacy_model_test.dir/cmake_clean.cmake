file(REMOVE_RECURSE
  "CMakeFiles/privacy_model_test.dir/core/privacy_model_test.cpp.o"
  "CMakeFiles/privacy_model_test.dir/core/privacy_model_test.cpp.o.d"
  "privacy_model_test"
  "privacy_model_test.pdb"
  "privacy_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
