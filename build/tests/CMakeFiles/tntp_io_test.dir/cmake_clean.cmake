file(REMOVE_RECURSE
  "CMakeFiles/tntp_io_test.dir/roadnet/tntp_io_test.cpp.o"
  "CMakeFiles/tntp_io_test.dir/roadnet/tntp_io_test.cpp.o.d"
  "tntp_io_test"
  "tntp_io_test.pdb"
  "tntp_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tntp_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
