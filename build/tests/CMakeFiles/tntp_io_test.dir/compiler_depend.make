# Empty compiler generated dependencies file for tntp_io_test.
# This may be replaced when dependencies are built.
