file(REMOVE_RECURSE
  "CMakeFiles/paper_table1_structure_test.dir/roadnet/paper_table1_structure_test.cpp.o"
  "CMakeFiles/paper_table1_structure_test.dir/roadnet/paper_table1_structure_test.cpp.o.d"
  "paper_table1_structure_test"
  "paper_table1_structure_test.pdb"
  "paper_table1_structure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_table1_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
