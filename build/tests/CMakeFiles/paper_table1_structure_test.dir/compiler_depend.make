# Empty compiler generated dependencies file for paper_table1_structure_test.
# This may be replaced when dependencies are built.
