# Empty dependencies file for multi_period_test.
# This may be replaced when dependencies are built.
