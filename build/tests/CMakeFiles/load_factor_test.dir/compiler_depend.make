# Empty compiler generated dependencies file for load_factor_test.
# This may be replaced when dependencies are built.
