file(REMOVE_RECURSE
  "CMakeFiles/load_factor_test.dir/core/load_factor_test.cpp.o"
  "CMakeFiles/load_factor_test.dir/core/load_factor_test.cpp.o.d"
  "load_factor_test"
  "load_factor_test.pdb"
  "load_factor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_factor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
