# Empty compiler generated dependencies file for archive_fuzz_test.
# This may be replaced when dependencies are built.
