file(REMOVE_RECURSE
  "CMakeFiles/archive_fuzz_test.dir/vcps/archive_fuzz_test.cpp.o"
  "CMakeFiles/archive_fuzz_test.dir/vcps/archive_fuzz_test.cpp.o.d"
  "archive_fuzz_test"
  "archive_fuzz_test.pdb"
  "archive_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archive_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
