# Empty compiler generated dependencies file for triple_estimator_test.
# This may be replaced when dependencies are built.
