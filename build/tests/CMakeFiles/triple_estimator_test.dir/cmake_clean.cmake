file(REMOVE_RECURSE
  "CMakeFiles/triple_estimator_test.dir/core/triple_estimator_test.cpp.o"
  "CMakeFiles/triple_estimator_test.dir/core/triple_estimator_test.cpp.o.d"
  "triple_estimator_test"
  "triple_estimator_test.pdb"
  "triple_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triple_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
