file(REMOVE_RECURSE
  "CMakeFiles/od_matrix_test.dir/core/od_matrix_test.cpp.o"
  "CMakeFiles/od_matrix_test.dir/core/od_matrix_test.cpp.o.d"
  "od_matrix_test"
  "od_matrix_test.pdb"
  "od_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/od_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
