# Empty dependencies file for od_matrix_test.
# This may be replaced when dependencies are built.
