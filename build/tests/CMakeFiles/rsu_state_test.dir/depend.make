# Empty dependencies file for rsu_state_test.
# This may be replaced when dependencies are built.
