file(REMOVE_RECURSE
  "CMakeFiles/rsu_state_test.dir/core/rsu_state_test.cpp.o"
  "CMakeFiles/rsu_state_test.dir/core/rsu_state_test.cpp.o.d"
  "rsu_state_test"
  "rsu_state_test.pdb"
  "rsu_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsu_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
