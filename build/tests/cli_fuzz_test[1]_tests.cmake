add_test([=[CliFuzz.RandomArgvNeverCrashes]=]  /root/repo/build/tests/cli_fuzz_test [==[--gtest_filter=CliFuzz.RandomArgvNeverCrashes]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[CliFuzz.RandomArgvNeverCrashes]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  cli_fuzz_test_TESTS CliFuzz.RandomArgvNeverCrashes)
