# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig2 "/root/repo/build/bench/bench_fig2_privacy")
set_tests_properties(bench_smoke_fig2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table1 "/root/repo/build/bench/bench_table1_sioux_falls")
set_tests_properties(bench_smoke_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig4 "/root/repo/build/bench/bench_fig4_fbm_accuracy" "--step" "0.1")
set_tests_properties(bench_smoke_fig4 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig5 "/root/repo/build/bench/bench_fig5_vlm_accuracy" "--step" "0.1")
set_tests_properties(bench_smoke_fig5 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig4_s5 "/root/repo/build/bench/bench_fig4_fbm_accuracy" "--step" "0.1" "--s" "5")
set_tests_properties(bench_smoke_fig4_s5 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;29;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig5_s10 "/root/repo/build/bench/bench_fig5_vlm_accuracy" "--step" "0.1" "--s" "10")
set_tests_properties(bench_smoke_fig5_s10 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_accuracy_model "/root/repo/build/bench/bench_accuracy_model" "--trials" "10")
set_tests_properties(bench_smoke_accuracy_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation "/root/repo/build/bench/bench_ablation_imbalance" "--trials" "2")
set_tests_properties(bench_smoke_ablation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_triple "/root/repo/build/bench/bench_extension_triple" "--trials" "2")
set_tests_properties(bench_smoke_triple PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_hll "/root/repo/build/bench/bench_baseline_hll" "--trials" "2")
set_tests_properties(bench_smoke_hll PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_overhead "/root/repo/build/bench/bench_overhead" "--benchmark_min_time=0.01")
set_tests_properties(bench_smoke_overhead PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
