file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_sioux_falls.dir/bench_table1_sioux_falls.cpp.o"
  "CMakeFiles/bench_table1_sioux_falls.dir/bench_table1_sioux_falls.cpp.o.d"
  "bench_table1_sioux_falls"
  "bench_table1_sioux_falls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_sioux_falls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
