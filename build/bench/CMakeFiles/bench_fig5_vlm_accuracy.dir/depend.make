# Empty dependencies file for bench_fig5_vlm_accuracy.
# This may be replaced when dependencies are built.
