file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_imbalance.dir/bench_ablation_imbalance.cpp.o"
  "CMakeFiles/bench_ablation_imbalance.dir/bench_ablation_imbalance.cpp.o.d"
  "bench_ablation_imbalance"
  "bench_ablation_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
