file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_privacy.dir/bench_fig2_privacy.cpp.o"
  "CMakeFiles/bench_fig2_privacy.dir/bench_fig2_privacy.cpp.o.d"
  "bench_fig2_privacy"
  "bench_fig2_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
