# Empty compiler generated dependencies file for bench_baseline_hll.
# This may be replaced when dependencies are built.
