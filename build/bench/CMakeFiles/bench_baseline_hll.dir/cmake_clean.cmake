file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_hll.dir/bench_baseline_hll.cpp.o"
  "CMakeFiles/bench_baseline_hll.dir/bench_baseline_hll.cpp.o.d"
  "bench_baseline_hll"
  "bench_baseline_hll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_hll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
