file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_triple.dir/bench_extension_triple.cpp.o"
  "CMakeFiles/bench_extension_triple.dir/bench_extension_triple.cpp.o.d"
  "bench_extension_triple"
  "bench_extension_triple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_triple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
