# Empty dependencies file for bench_extension_triple.
# This may be replaced when dependencies are built.
