file(REMOVE_RECURSE
  "CMakeFiles/bench_accuracy_model.dir/bench_accuracy_model.cpp.o"
  "CMakeFiles/bench_accuracy_model.dir/bench_accuracy_model.cpp.o.d"
  "bench_accuracy_model"
  "bench_accuracy_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accuracy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
