# Empty compiler generated dependencies file for bench_accuracy_model.
# This may be replaced when dependencies are built.
