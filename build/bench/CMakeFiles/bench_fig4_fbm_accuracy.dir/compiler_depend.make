# Empty compiler generated dependencies file for bench_fig4_fbm_accuracy.
# This may be replaced when dependencies are built.
