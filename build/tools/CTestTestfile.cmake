# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_simulate_grid "/root/repo/build/tools/vlm_simulate" "--network" "grid" "--rows" "4" "--cols" "4" "--demand" "20000" "--out" "/root/repo/build/tools/smoke.bin")
set_tests_properties(tool_simulate_grid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_analyze_matrix "/root/repo/build/tools/vlm_analyze" "--in" "/root/repo/build/tools/smoke.bin" "--matrix" "--top" "5")
set_tests_properties(tool_analyze_matrix PROPERTIES  DEPENDS "tool_simulate_grid" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
