# Empty compiler generated dependencies file for vlm_analyze.
# This may be replaced when dependencies are built.
