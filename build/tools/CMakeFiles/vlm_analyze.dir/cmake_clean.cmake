file(REMOVE_RECURSE
  "CMakeFiles/vlm_analyze.dir/vlm_analyze.cpp.o"
  "CMakeFiles/vlm_analyze.dir/vlm_analyze.cpp.o.d"
  "vlm_analyze"
  "vlm_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlm_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
