# Empty compiler generated dependencies file for vlm_simulate.
# This may be replaced when dependencies are built.
