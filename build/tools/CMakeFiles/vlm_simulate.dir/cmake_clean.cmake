file(REMOVE_RECURSE
  "CMakeFiles/vlm_simulate.dir/vlm_simulate.cpp.o"
  "CMakeFiles/vlm_simulate.dir/vlm_simulate.cpp.o.d"
  "vlm_simulate"
  "vlm_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlm_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
