file(REMOVE_RECURSE
  "CMakeFiles/city_scale_measurement.dir/city_scale_measurement.cpp.o"
  "CMakeFiles/city_scale_measurement.dir/city_scale_measurement.cpp.o.d"
  "city_scale_measurement"
  "city_scale_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_scale_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
