# Empty dependencies file for city_scale_measurement.
# This may be replaced when dependencies are built.
