file(REMOVE_RECURSE
  "CMakeFiles/multi_period_monitoring.dir/multi_period_monitoring.cpp.o"
  "CMakeFiles/multi_period_monitoring.dir/multi_period_monitoring.cpp.o.d"
  "multi_period_monitoring"
  "multi_period_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_period_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
