# Empty dependencies file for multi_period_monitoring.
# This may be replaced when dependencies are built.
