
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sioux_falls_study.cpp" "examples/CMakeFiles/sioux_falls_study.dir/sioux_falls_study.cpp.o" "gcc" "examples/CMakeFiles/sioux_falls_study.dir/sioux_falls_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vlm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vlm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vlm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/vlm_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/vlm_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/vlm_traffic_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/vcps/CMakeFiles/vlm_vcps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
