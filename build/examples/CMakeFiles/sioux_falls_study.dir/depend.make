# Empty dependencies file for sioux_falls_study.
# This may be replaced when dependencies are built.
