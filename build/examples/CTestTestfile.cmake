# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sioux_falls "/root/repo/build/examples/sioux_falls_study" "--scale" "0.05")
set_tests_properties(example_sioux_falls PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_privacy_explorer "/root/repo/build/examples/privacy_explorer")
set_tests_properties(example_privacy_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_city_scale "/root/repo/build/examples/city_scale_measurement" "--vehicles" "20000" "--rsus" "12")
set_tests_properties(example_city_scale PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_deployment_planner "/root/repo/build/examples/deployment_planner" "--max-volume" "60000")
set_tests_properties(example_deployment_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_period "/root/repo/build/examples/multi_period_monitoring" "--days" "3" "--n-y-only" "20000")
set_tests_properties(example_multi_period PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
