file(REMOVE_RECURSE
  "CMakeFiles/vlm_traffic_lib.dir/diurnal.cpp.o"
  "CMakeFiles/vlm_traffic_lib.dir/diurnal.cpp.o.d"
  "CMakeFiles/vlm_traffic_lib.dir/multi_rsu_workload.cpp.o"
  "CMakeFiles/vlm_traffic_lib.dir/multi_rsu_workload.cpp.o.d"
  "CMakeFiles/vlm_traffic_lib.dir/sweeps.cpp.o"
  "CMakeFiles/vlm_traffic_lib.dir/sweeps.cpp.o.d"
  "libvlm_traffic_lib.a"
  "libvlm_traffic_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlm_traffic_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
