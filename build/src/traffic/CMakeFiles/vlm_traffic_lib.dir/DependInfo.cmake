
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/diurnal.cpp" "src/traffic/CMakeFiles/vlm_traffic_lib.dir/diurnal.cpp.o" "gcc" "src/traffic/CMakeFiles/vlm_traffic_lib.dir/diurnal.cpp.o.d"
  "/root/repo/src/traffic/multi_rsu_workload.cpp" "src/traffic/CMakeFiles/vlm_traffic_lib.dir/multi_rsu_workload.cpp.o" "gcc" "src/traffic/CMakeFiles/vlm_traffic_lib.dir/multi_rsu_workload.cpp.o.d"
  "/root/repo/src/traffic/sweeps.cpp" "src/traffic/CMakeFiles/vlm_traffic_lib.dir/sweeps.cpp.o" "gcc" "src/traffic/CMakeFiles/vlm_traffic_lib.dir/sweeps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vlm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vlm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vlm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
