# Empty compiler generated dependencies file for vlm_traffic_lib.
# This may be replaced when dependencies are built.
