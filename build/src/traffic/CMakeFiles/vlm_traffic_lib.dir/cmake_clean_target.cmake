file(REMOVE_RECURSE
  "libvlm_traffic_lib.a"
)
