# Empty compiler generated dependencies file for vlm_stats.
# This may be replaced when dependencies are built.
