
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/chi_square.cpp" "src/stats/CMakeFiles/vlm_stats.dir/chi_square.cpp.o" "gcc" "src/stats/CMakeFiles/vlm_stats.dir/chi_square.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/vlm_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/vlm_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/vlm_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/vlm_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/estimator_eval.cpp" "src/stats/CMakeFiles/vlm_stats.dir/estimator_eval.cpp.o" "gcc" "src/stats/CMakeFiles/vlm_stats.dir/estimator_eval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vlm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
