file(REMOVE_RECURSE
  "libvlm_stats.a"
)
