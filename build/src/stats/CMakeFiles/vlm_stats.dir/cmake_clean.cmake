file(REMOVE_RECURSE
  "CMakeFiles/vlm_stats.dir/chi_square.cpp.o"
  "CMakeFiles/vlm_stats.dir/chi_square.cpp.o.d"
  "CMakeFiles/vlm_stats.dir/descriptive.cpp.o"
  "CMakeFiles/vlm_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/vlm_stats.dir/distributions.cpp.o"
  "CMakeFiles/vlm_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/vlm_stats.dir/estimator_eval.cpp.o"
  "CMakeFiles/vlm_stats.dir/estimator_eval.cpp.o.d"
  "libvlm_stats.a"
  "libvlm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
