# Empty dependencies file for vlm_roadnet.
# This may be replaced when dependencies are built.
