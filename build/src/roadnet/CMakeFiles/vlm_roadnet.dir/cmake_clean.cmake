file(REMOVE_RECURSE
  "CMakeFiles/vlm_roadnet.dir/assignment.cpp.o"
  "CMakeFiles/vlm_roadnet.dir/assignment.cpp.o.d"
  "CMakeFiles/vlm_roadnet.dir/graph.cpp.o"
  "CMakeFiles/vlm_roadnet.dir/graph.cpp.o.d"
  "CMakeFiles/vlm_roadnet.dir/shortest_path.cpp.o"
  "CMakeFiles/vlm_roadnet.dir/shortest_path.cpp.o.d"
  "CMakeFiles/vlm_roadnet.dir/sioux_falls.cpp.o"
  "CMakeFiles/vlm_roadnet.dir/sioux_falls.cpp.o.d"
  "CMakeFiles/vlm_roadnet.dir/synthetic_city.cpp.o"
  "CMakeFiles/vlm_roadnet.dir/synthetic_city.cpp.o.d"
  "CMakeFiles/vlm_roadnet.dir/tntp_io.cpp.o"
  "CMakeFiles/vlm_roadnet.dir/tntp_io.cpp.o.d"
  "CMakeFiles/vlm_roadnet.dir/trajectory.cpp.o"
  "CMakeFiles/vlm_roadnet.dir/trajectory.cpp.o.d"
  "CMakeFiles/vlm_roadnet.dir/trip_table.cpp.o"
  "CMakeFiles/vlm_roadnet.dir/trip_table.cpp.o.d"
  "libvlm_roadnet.a"
  "libvlm_roadnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlm_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
