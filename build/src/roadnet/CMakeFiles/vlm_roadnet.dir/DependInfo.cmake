
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roadnet/assignment.cpp" "src/roadnet/CMakeFiles/vlm_roadnet.dir/assignment.cpp.o" "gcc" "src/roadnet/CMakeFiles/vlm_roadnet.dir/assignment.cpp.o.d"
  "/root/repo/src/roadnet/graph.cpp" "src/roadnet/CMakeFiles/vlm_roadnet.dir/graph.cpp.o" "gcc" "src/roadnet/CMakeFiles/vlm_roadnet.dir/graph.cpp.o.d"
  "/root/repo/src/roadnet/shortest_path.cpp" "src/roadnet/CMakeFiles/vlm_roadnet.dir/shortest_path.cpp.o" "gcc" "src/roadnet/CMakeFiles/vlm_roadnet.dir/shortest_path.cpp.o.d"
  "/root/repo/src/roadnet/sioux_falls.cpp" "src/roadnet/CMakeFiles/vlm_roadnet.dir/sioux_falls.cpp.o" "gcc" "src/roadnet/CMakeFiles/vlm_roadnet.dir/sioux_falls.cpp.o.d"
  "/root/repo/src/roadnet/synthetic_city.cpp" "src/roadnet/CMakeFiles/vlm_roadnet.dir/synthetic_city.cpp.o" "gcc" "src/roadnet/CMakeFiles/vlm_roadnet.dir/synthetic_city.cpp.o.d"
  "/root/repo/src/roadnet/tntp_io.cpp" "src/roadnet/CMakeFiles/vlm_roadnet.dir/tntp_io.cpp.o" "gcc" "src/roadnet/CMakeFiles/vlm_roadnet.dir/tntp_io.cpp.o.d"
  "/root/repo/src/roadnet/trajectory.cpp" "src/roadnet/CMakeFiles/vlm_roadnet.dir/trajectory.cpp.o" "gcc" "src/roadnet/CMakeFiles/vlm_roadnet.dir/trajectory.cpp.o.d"
  "/root/repo/src/roadnet/trip_table.cpp" "src/roadnet/CMakeFiles/vlm_roadnet.dir/trip_table.cpp.o" "gcc" "src/roadnet/CMakeFiles/vlm_roadnet.dir/trip_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vlm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vlm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
