file(REMOVE_RECURSE
  "libvlm_roadnet.a"
)
