file(REMOVE_RECURSE
  "CMakeFiles/vlm_vcps.dir/adversary.cpp.o"
  "CMakeFiles/vlm_vcps.dir/adversary.cpp.o.d"
  "CMakeFiles/vlm_vcps.dir/archive.cpp.o"
  "CMakeFiles/vlm_vcps.dir/archive.cpp.o.d"
  "CMakeFiles/vlm_vcps.dir/central_server.cpp.o"
  "CMakeFiles/vlm_vcps.dir/central_server.cpp.o.d"
  "CMakeFiles/vlm_vcps.dir/channel.cpp.o"
  "CMakeFiles/vlm_vcps.dir/channel.cpp.o.d"
  "CMakeFiles/vlm_vcps.dir/event_sim.cpp.o"
  "CMakeFiles/vlm_vcps.dir/event_sim.cpp.o.d"
  "CMakeFiles/vlm_vcps.dir/pki.cpp.o"
  "CMakeFiles/vlm_vcps.dir/pki.cpp.o.d"
  "CMakeFiles/vlm_vcps.dir/rsu.cpp.o"
  "CMakeFiles/vlm_vcps.dir/rsu.cpp.o.d"
  "CMakeFiles/vlm_vcps.dir/simulation.cpp.o"
  "CMakeFiles/vlm_vcps.dir/simulation.cpp.o.d"
  "CMakeFiles/vlm_vcps.dir/vehicle.cpp.o"
  "CMakeFiles/vlm_vcps.dir/vehicle.cpp.o.d"
  "libvlm_vcps.a"
  "libvlm_vcps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlm_vcps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
