
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vcps/adversary.cpp" "src/vcps/CMakeFiles/vlm_vcps.dir/adversary.cpp.o" "gcc" "src/vcps/CMakeFiles/vlm_vcps.dir/adversary.cpp.o.d"
  "/root/repo/src/vcps/archive.cpp" "src/vcps/CMakeFiles/vlm_vcps.dir/archive.cpp.o" "gcc" "src/vcps/CMakeFiles/vlm_vcps.dir/archive.cpp.o.d"
  "/root/repo/src/vcps/central_server.cpp" "src/vcps/CMakeFiles/vlm_vcps.dir/central_server.cpp.o" "gcc" "src/vcps/CMakeFiles/vlm_vcps.dir/central_server.cpp.o.d"
  "/root/repo/src/vcps/channel.cpp" "src/vcps/CMakeFiles/vlm_vcps.dir/channel.cpp.o" "gcc" "src/vcps/CMakeFiles/vlm_vcps.dir/channel.cpp.o.d"
  "/root/repo/src/vcps/event_sim.cpp" "src/vcps/CMakeFiles/vlm_vcps.dir/event_sim.cpp.o" "gcc" "src/vcps/CMakeFiles/vlm_vcps.dir/event_sim.cpp.o.d"
  "/root/repo/src/vcps/pki.cpp" "src/vcps/CMakeFiles/vlm_vcps.dir/pki.cpp.o" "gcc" "src/vcps/CMakeFiles/vlm_vcps.dir/pki.cpp.o.d"
  "/root/repo/src/vcps/rsu.cpp" "src/vcps/CMakeFiles/vlm_vcps.dir/rsu.cpp.o" "gcc" "src/vcps/CMakeFiles/vlm_vcps.dir/rsu.cpp.o.d"
  "/root/repo/src/vcps/simulation.cpp" "src/vcps/CMakeFiles/vlm_vcps.dir/simulation.cpp.o" "gcc" "src/vcps/CMakeFiles/vlm_vcps.dir/simulation.cpp.o.d"
  "/root/repo/src/vcps/vehicle.cpp" "src/vcps/CMakeFiles/vlm_vcps.dir/vehicle.cpp.o" "gcc" "src/vcps/CMakeFiles/vlm_vcps.dir/vehicle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vlm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vlm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vlm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
