file(REMOVE_RECURSE
  "libvlm_vcps.a"
)
