# Empty dependencies file for vlm_vcps.
# This may be replaced when dependencies are built.
