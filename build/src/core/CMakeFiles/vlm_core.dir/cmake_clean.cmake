file(REMOVE_RECURSE
  "CMakeFiles/vlm_core.dir/accuracy_model.cpp.o"
  "CMakeFiles/vlm_core.dir/accuracy_model.cpp.o.d"
  "CMakeFiles/vlm_core.dir/calibration.cpp.o"
  "CMakeFiles/vlm_core.dir/calibration.cpp.o.d"
  "CMakeFiles/vlm_core.dir/encoder.cpp.o"
  "CMakeFiles/vlm_core.dir/encoder.cpp.o.d"
  "CMakeFiles/vlm_core.dir/estimator.cpp.o"
  "CMakeFiles/vlm_core.dir/estimator.cpp.o.d"
  "CMakeFiles/vlm_core.dir/interval.cpp.o"
  "CMakeFiles/vlm_core.dir/interval.cpp.o.d"
  "CMakeFiles/vlm_core.dir/load_factor.cpp.o"
  "CMakeFiles/vlm_core.dir/load_factor.cpp.o.d"
  "CMakeFiles/vlm_core.dir/multi_period.cpp.o"
  "CMakeFiles/vlm_core.dir/multi_period.cpp.o.d"
  "CMakeFiles/vlm_core.dir/od_matrix.cpp.o"
  "CMakeFiles/vlm_core.dir/od_matrix.cpp.o.d"
  "CMakeFiles/vlm_core.dir/pair_simulation.cpp.o"
  "CMakeFiles/vlm_core.dir/pair_simulation.cpp.o.d"
  "CMakeFiles/vlm_core.dir/privacy_model.cpp.o"
  "CMakeFiles/vlm_core.dir/privacy_model.cpp.o.d"
  "CMakeFiles/vlm_core.dir/report_validator.cpp.o"
  "CMakeFiles/vlm_core.dir/report_validator.cpp.o.d"
  "CMakeFiles/vlm_core.dir/rsu_state.cpp.o"
  "CMakeFiles/vlm_core.dir/rsu_state.cpp.o.d"
  "CMakeFiles/vlm_core.dir/sizing.cpp.o"
  "CMakeFiles/vlm_core.dir/sizing.cpp.o.d"
  "CMakeFiles/vlm_core.dir/triple_estimator.cpp.o"
  "CMakeFiles/vlm_core.dir/triple_estimator.cpp.o.d"
  "CMakeFiles/vlm_core.dir/union_estimator.cpp.o"
  "CMakeFiles/vlm_core.dir/union_estimator.cpp.o.d"
  "libvlm_core.a"
  "libvlm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
