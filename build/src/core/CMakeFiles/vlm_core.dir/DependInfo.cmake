
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accuracy_model.cpp" "src/core/CMakeFiles/vlm_core.dir/accuracy_model.cpp.o" "gcc" "src/core/CMakeFiles/vlm_core.dir/accuracy_model.cpp.o.d"
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/vlm_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/vlm_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/encoder.cpp" "src/core/CMakeFiles/vlm_core.dir/encoder.cpp.o" "gcc" "src/core/CMakeFiles/vlm_core.dir/encoder.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/vlm_core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/vlm_core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/interval.cpp" "src/core/CMakeFiles/vlm_core.dir/interval.cpp.o" "gcc" "src/core/CMakeFiles/vlm_core.dir/interval.cpp.o.d"
  "/root/repo/src/core/load_factor.cpp" "src/core/CMakeFiles/vlm_core.dir/load_factor.cpp.o" "gcc" "src/core/CMakeFiles/vlm_core.dir/load_factor.cpp.o.d"
  "/root/repo/src/core/multi_period.cpp" "src/core/CMakeFiles/vlm_core.dir/multi_period.cpp.o" "gcc" "src/core/CMakeFiles/vlm_core.dir/multi_period.cpp.o.d"
  "/root/repo/src/core/od_matrix.cpp" "src/core/CMakeFiles/vlm_core.dir/od_matrix.cpp.o" "gcc" "src/core/CMakeFiles/vlm_core.dir/od_matrix.cpp.o.d"
  "/root/repo/src/core/pair_simulation.cpp" "src/core/CMakeFiles/vlm_core.dir/pair_simulation.cpp.o" "gcc" "src/core/CMakeFiles/vlm_core.dir/pair_simulation.cpp.o.d"
  "/root/repo/src/core/privacy_model.cpp" "src/core/CMakeFiles/vlm_core.dir/privacy_model.cpp.o" "gcc" "src/core/CMakeFiles/vlm_core.dir/privacy_model.cpp.o.d"
  "/root/repo/src/core/report_validator.cpp" "src/core/CMakeFiles/vlm_core.dir/report_validator.cpp.o" "gcc" "src/core/CMakeFiles/vlm_core.dir/report_validator.cpp.o.d"
  "/root/repo/src/core/rsu_state.cpp" "src/core/CMakeFiles/vlm_core.dir/rsu_state.cpp.o" "gcc" "src/core/CMakeFiles/vlm_core.dir/rsu_state.cpp.o.d"
  "/root/repo/src/core/sizing.cpp" "src/core/CMakeFiles/vlm_core.dir/sizing.cpp.o" "gcc" "src/core/CMakeFiles/vlm_core.dir/sizing.cpp.o.d"
  "/root/repo/src/core/triple_estimator.cpp" "src/core/CMakeFiles/vlm_core.dir/triple_estimator.cpp.o" "gcc" "src/core/CMakeFiles/vlm_core.dir/triple_estimator.cpp.o.d"
  "/root/repo/src/core/union_estimator.cpp" "src/core/CMakeFiles/vlm_core.dir/union_estimator.cpp.o" "gcc" "src/core/CMakeFiles/vlm_core.dir/union_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vlm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/vlm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
