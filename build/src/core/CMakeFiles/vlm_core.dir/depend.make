# Empty dependencies file for vlm_core.
# This may be replaced when dependencies are built.
