file(REMOVE_RECURSE
  "libvlm_core.a"
)
