file(REMOVE_RECURSE
  "CMakeFiles/vlm_common.dir/bit_array.cpp.o"
  "CMakeFiles/vlm_common.dir/bit_array.cpp.o.d"
  "CMakeFiles/vlm_common.dir/cli.cpp.o"
  "CMakeFiles/vlm_common.dir/cli.cpp.o.d"
  "CMakeFiles/vlm_common.dir/csv.cpp.o"
  "CMakeFiles/vlm_common.dir/csv.cpp.o.d"
  "CMakeFiles/vlm_common.dir/hashing.cpp.o"
  "CMakeFiles/vlm_common.dir/hashing.cpp.o.d"
  "CMakeFiles/vlm_common.dir/logging.cpp.o"
  "CMakeFiles/vlm_common.dir/logging.cpp.o.d"
  "CMakeFiles/vlm_common.dir/math_util.cpp.o"
  "CMakeFiles/vlm_common.dir/math_util.cpp.o.d"
  "CMakeFiles/vlm_common.dir/parallel.cpp.o"
  "CMakeFiles/vlm_common.dir/parallel.cpp.o.d"
  "CMakeFiles/vlm_common.dir/rng.cpp.o"
  "CMakeFiles/vlm_common.dir/rng.cpp.o.d"
  "CMakeFiles/vlm_common.dir/table.cpp.o"
  "CMakeFiles/vlm_common.dir/table.cpp.o.d"
  "libvlm_common.a"
  "libvlm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
