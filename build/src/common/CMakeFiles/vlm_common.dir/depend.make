# Empty dependencies file for vlm_common.
# This may be replaced when dependencies are built.
