file(REMOVE_RECURSE
  "libvlm_common.a"
)
