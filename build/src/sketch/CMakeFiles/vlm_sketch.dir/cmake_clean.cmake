file(REMOVE_RECURSE
  "CMakeFiles/vlm_sketch.dir/hll.cpp.o"
  "CMakeFiles/vlm_sketch.dir/hll.cpp.o.d"
  "libvlm_sketch.a"
  "libvlm_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlm_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
