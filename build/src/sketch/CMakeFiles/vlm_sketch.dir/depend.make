# Empty dependencies file for vlm_sketch.
# This may be replaced when dependencies are built.
