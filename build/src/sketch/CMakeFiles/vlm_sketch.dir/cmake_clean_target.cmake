file(REMOVE_RECURSE
  "libvlm_sketch.a"
)
