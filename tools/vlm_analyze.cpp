// vlm_analyze — offline decoding of an archived measurement period.
//
//   $ vlm_analyze --in period.bin                       # per-RSU health
//   $ vlm_analyze --in period.bin --pair 10:15          # one estimate
//   $ vlm_analyze --in period.bin --matrix --top 12     # largest flows
//
// Validates every report (occupancy z-score), then answers
// point-to-point queries with confidence intervals — the central-server
// side of the paper, run from files instead of a live deployment.
#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/bit_array.h"
#include "common/cli.h"
#include "common/csv.h"
#include "common/table.h"
#include "core/interval.h"
#include "core/multi_period.h"
#include "core/od_matrix.h"
#include "core/report_validator.h"
#include "obs/export.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/stats_text.h"
#include "obs/trace.h"
#include "vcps/archive.h"

namespace {

using namespace vlm;

struct LoadedReport {
  core::RsuId id;
  core::RsuState state;
};

// Parses "a:b" into two RSU ids.
bool parse_pair(const std::string& text, std::uint64_t& a, std::uint64_t& b) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) return false;
  try {
    a = std::stoull(text.substr(0, colon));
    b = std::stoull(text.substr(colon + 1));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  common::ArgParser parser("vlm_analyze",
                           "decode an archived measurement period");
  parser.add_string("in", "period.bin",
                    "archive path(s); comma-separate multiple periods to "
                    "aggregate pair estimates across them");
  parser.add_int("s", 2, "logical bit array size the deployment used");
  parser.add_string("pair", "", "estimate one pair, format '<id>:<id>'");
  parser.add_flag("matrix", false, "estimate all pairs");
  parser.add_int("top", 10, "with --matrix: print the N largest flows");
  parser.add_double("z", 1.96, "interval width (normal quantile)");
  parser.add_int("workers", 0,
                 "decode threads for --matrix (0 = one per core, 1 = serial; "
                 "any value gives bit-identical estimates)");
  parser.add_string("decode", "auto",
                    "decode path for --matrix: pairwise|blocked|pruned|auto "
                    "(VLM_DECODE, when set, overrides this)");
  parser.add_int("prune-stride", 16,
                 "--decode pruned: sample every Nth 8-word block");
  parser.add_double("prune-z", 4.0,
                    "--decode pruned: confidence multiplier on the sampled "
                    "union (higher keeps more pairs)");
  parser.add_double("min-volume", 0.0,
                    "--decode pruned: skip pairs whose overlap upper bound "
                    "is at or below this");
  parser.add_string("csv", "", "with --matrix: also write every pair to CSV");
  parser.add_string("metrics", "",
                    "write the metrics snapshot here (VLM_METRICS when empty)");
  parser.add_string("metrics-format", "",
                    "json|prom|csv (VLM_METRICS_FORMAT when empty; default "
                    "json)");
  parser.add_string("trace", "",
                    "write a Chrome Trace Event JSON flight-recorder timeline "
                    "here (VLM_TRACE when empty)");
  if (!parser.parse(argc, argv)) return 0;

  // Resolve export destinations before any fallible work: a bad flag or
  // unreadable archive must still flush the metrics measured so far (the
  // guard's plain snapshot) instead of silently skipping --metrics.
  const obs::ExportConfig metrics_config = obs::resolve_export_config(
      parser.get_string("metrics"), parser.get_string("metrics-format"));
  obs::MetricsExportGuard metrics_guard(metrics_config);
  const std::string trace_path =
      obs::trace::resolve_trace_path(parser.get_string("trace"));
  if (!trace_path.empty()) {
    obs::trace::set_thread_name("main");
    obs::trace::set_enabled(true);
  }

  try {
    // Split --in on commas: one or more period archives.
    std::vector<std::string> paths;
    {
      std::string remaining = parser.get_string("in");
      std::size_t comma;
      while ((comma = remaining.find(',')) != std::string::npos) {
        paths.push_back(remaining.substr(0, comma));
        remaining = remaining.substr(comma + 1);
      }
      if (!remaining.empty()) paths.push_back(remaining);
    }
    if (paths.empty()) {
      std::fprintf(stderr, "error: --in needs at least one path\n");
      return 1;
    }
    std::vector<vcps::PeriodArchive> archives;
    archives.reserve(paths.size());
    for (const std::string& path : paths) {
      archives.push_back(vcps::load_archive(path));
    }
    const vcps::PeriodArchive& archive = archives.back();
    const auto s = static_cast<std::uint32_t>(parser.get_int("s"));
    const double z = parser.get_double("z");

    std::vector<LoadedReport> rsus;
    rsus.reserve(archive.reports.size());
    for (const vcps::RsuReport& report : archive.reports) {
      rsus.push_back(LoadedReport{
          report.rsu,
          core::RsuState::from_report(
              report.counter,
              common::BitArray::from_bytes(report.array_size, report.bits))});
    }
    std::sort(rsus.begin(), rsus.end(),
              [](const LoadedReport& a, const LoadedReport& b) {
                return a.id < b.id;
              });
    std::printf("period %llu: %zu RSU reports\n\n",
                static_cast<unsigned long long>(archive.period), rsus.size());

    // Per-RSU health.
    const core::ReportValidator validator(6.0);
    common::TextTable health(
        {"RSU", "counter", "m", "load f", "zero frac", "z-score", "verdict"});
    for (const LoadedReport& r : rsus) {
      const auto a = validator.assess(r.state);
      const char* verdict = "ok";
      if (a.verdict == core::ReportVerdict::kTooFull) verdict = "TOO FULL";
      if (a.verdict == core::ReportVerdict::kTooEmpty) verdict = "TOO EMPTY";
      if (a.verdict == core::ReportVerdict::kInconsistent) {
        verdict = "INCONSISTENT";
      }
      health.add_row(
          {std::to_string(r.id.value),
           common::TextTable::fmt_int(
               static_cast<long long>(r.state.counter())),
           std::to_string(r.state.array_size()),
           common::TextTable::fmt(
               r.state.counter() > 0 ? r.state.load_factor() : 0.0, 2),
           common::TextTable::fmt(r.state.zero_fraction(), 4),
           common::TextTable::fmt(a.z_score, 2), verdict});
    }
    std::printf("%s", health.to_string().c_str());

    // Estimator-health telemetry over the archived states. Offline
    // archives do not carry the deployment's sizing plan, so the drift
    // check stays off (target_load_factor 0); saturation and fill still
    // publish through health/*.
    obs::health::HealthOptions health_options;
    health_options.s = s;
    std::vector<const core::RsuState*> state_ptrs;
    state_ptrs.reserve(rsus.size());
    for (const LoadedReport& r : rsus) state_ptrs.push_back(&r.state);
    obs::health::HealthSummary health_summary = obs::health::assess_rsus(
        std::span<const core::RsuState* const>(state_ptrs), health_options);

    if (!parser.get_string("pair").empty()) {
      std::uint64_t a = 0, b = 0;
      if (!parse_pair(parser.get_string("pair"), a, b)) {
        std::fprintf(stderr, "error: --pair expects '<id>:<id>'\n");
        return 1;
      }
      // Aggregate across every supplied period (inverse-variance).
      const core::IntervalEstimator estimator(s, z);
      core::MultiPeriodAggregator aggregator(z);
      for (const vcps::PeriodArchive& period : archives) {
        const vcps::RsuReport* ra = nullptr;
        const vcps::RsuReport* rb = nullptr;
        for (const vcps::RsuReport& r : period.reports) {
          if (r.rsu.value == a) ra = &r;
          if (r.rsu.value == b) rb = &r;
        }
        if (!ra || !rb) {
          std::fprintf(stderr, "error: pair RSU missing in period %llu\n",
                       static_cast<unsigned long long>(period.period));
          return 1;
        }
        auto rebuild = [](const vcps::RsuReport& r) {
          return core::RsuState::from_report(
              r.counter,
              common::BitArray::from_bytes(r.array_size, r.bits));
        };
        aggregator.add_period(estimator.estimate(rebuild(*ra), rebuild(*rb)));
      }
      const core::AggregateEstimate e = aggregator.aggregate();
      std::printf(
          "\npair (%llu, %llu) over %zu period(s): n_c^ = %.1f, interval "
          "[%.0f, %.0f], sigma %.1f\n",
          static_cast<unsigned long long>(a),
          static_cast<unsigned long long>(b), e.periods, e.n_c_hat, e.lower,
          e.upper, e.stddev);
    }

    if (parser.get_flag("matrix") && rsus.size() >= 2) {
      std::vector<core::RsuState> states;
      states.reserve(rsus.size());
      for (const LoadedReport& r : rsus) states.push_back(r.state);
      const auto workers =
          static_cast<unsigned>(std::max<std::int64_t>(0, parser.get_int("workers")));
      core::DecodeOptions decode_options;
      decode_options.workers = workers;
      const std::string decode_name = parser.get_string("decode");
      if (decode_name == "pairwise") {
        decode_options.mode = core::DecodeMode::kPairwise;
      } else if (decode_name == "blocked") {
        decode_options.mode = core::DecodeMode::kBlocked;
      } else if (decode_name == "pruned") {
        decode_options.mode = core::DecodeMode::kPruned;
      } else if (decode_name == "auto") {
        decode_options.mode = core::DecodeMode::kAuto;
      } else {
        std::fprintf(stderr,
                     "error: --decode expects pairwise|blocked|pruned|auto\n");
        return 1;
      }
      decode_options.prune.sample_stride = static_cast<std::size_t>(
          std::max<std::int64_t>(1, parser.get_int("prune-stride")));
      decode_options.prune.z_prune = parser.get_double("prune-z");
      decode_options.prune.min_volume = parser.get_double("min-volume");
      core::DecodeStats decode_stats;
      const core::OdMatrix matrix =
          core::estimate_od_matrix(states, s, z, decode_options, &decode_stats);
      obs::health::assess_pairs(states, matrix, health_options, health_summary);
      struct Flow {
        std::size_t a, b;
        double estimate;
      };
      std::vector<Flow> flows;
      for (std::size_t a = 0; a < rsus.size(); ++a) {
        for (std::size_t b = a + 1; b < rsus.size(); ++b) {
          flows.push_back(Flow{a, b, matrix.at(a, b).n_c_hat});
        }
      }
      std::sort(flows.begin(), flows.end(),
                [](const Flow& x, const Flow& y) {
                  return x.estimate > y.estimate;
                });
      const auto top = std::min<std::size_t>(
          flows.size(), static_cast<std::size_t>(parser.get_int("top")));
      common::TextTable table({"pair", "estimate", "interval"});
      for (std::size_t i = 0; i < top; ++i) {
        const auto& e = matrix.at(flows[i].a, flows[i].b);
        table.add_row(
            {"(" + std::to_string(rsus[flows[i].a].id.value) + ", " +
                 std::to_string(rsus[flows[i].b].id.value) + ")",
             common::TextTable::fmt(e.n_c_hat, 1),
             "[" + common::TextTable::fmt(e.lower, 0) + ", " +
                 common::TextTable::fmt(e.upper, 0) + "]"});
      }
      std::printf("\ntop point-to-point flows (of %zu pairs):\n%s",
                  flows.size(), table.to_string().c_str());
      std::printf("total estimated pairwise common traffic: %.0f\n",
                  matrix.total_estimated_common());
      std::printf("%s", obs::format_decode_stats(decode_stats).c_str());
      if (!parser.get_string("csv").empty()) {
        common::CsvWriter csv(parser.get_string("csv"),
                              {"rsu_a", "rsu_b", "estimate", "lower", "upper",
                               "stddev", "degraded", "measured"});
        for (const Flow& flow : flows) {
          const auto& e = matrix.at(flow.a, flow.b);
          csv.add_row({std::to_string(rsus[flow.a].id.value),
                       std::to_string(rsus[flow.b].id.value),
                       common::TextTable::fmt(e.n_c_hat, 2),
                       common::TextTable::fmt(e.lower, 2),
                       common::TextTable::fmt(e.upper, 2),
                       common::TextTable::fmt(e.stddev, 2),
                       e.degraded ? "1" : "0",
                       matrix.measured(flow.a, flow.b) ? "1" : "0"});
        }
        std::printf("wrote %zu pairs to %s\n", flows.size(),
                    parser.get_string("csv").c_str());
      }
    }

    std::printf("%s",
                obs::health::format_health_summary(health_summary).c_str());

    // One registry snapshot covering the whole run (decode spans, pool
    // counters); format/destination shared with vlm_simulate.
    if (!metrics_config.path.empty()) {
      const obs::Snapshot snapshot = obs::MetricsRegistry::global().snapshot();
      std::string content;
      switch (metrics_config.format) {
        case obs::ExportFormat::kJson: {
          char extra[64];
          std::snprintf(extra, sizeof extra, "\"period\": %llu,",
                        static_cast<unsigned long long>(archive.period));
          content = obs::to_json(snapshot, extra);
          content += '\n';
          break;
        }
        case obs::ExportFormat::kPrometheus:
          content = obs::to_prometheus_text(snapshot);
          break;
        case obs::ExportFormat::kCsv:
          content = obs::csv_header() +
                    obs::to_csv_rows(snapshot, archive.period);
          break;
      }
      if (obs::write_text_file(metrics_config.path, content)) {
        std::printf("wrote %s metrics to %s\n",
                    obs::export_format_name(metrics_config.format),
                    metrics_config.path.c_str());
      }
    }
    metrics_guard.disarm();
    if (!trace_path.empty() &&
        obs::trace::write_chrome_trace(trace_path)) {
      std::printf("wrote chrome trace to %s\n", trace_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    // Flush whatever the flight recorder captured before the failure;
    // the export guard does the same for the metrics registry.
    if (!trace_path.empty()) obs::trace::write_chrome_trace(trace_path);
    return 1;
  }
}
