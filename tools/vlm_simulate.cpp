// vlm_simulate — run one or more measurement periods end to end and
// archive the RSU reports for offline analysis with vlm_analyze.
//
//   $ vlm_simulate --network sioux-falls --out period.bin
//   $ vlm_simulate --network grid --rows 8 --cols 8 --demand 300000 ...
//   $ vlm_simulate --network zipf --rsus 40 --vehicles 250000 ...
//   $ vlm_simulate --periods 4 --metrics metrics.json        # phase trace
//
// The tool drives the FULL protocol (certificates, queries, replies,
// serialized reports) through vcps::VcpsSimulation, so the archive is
// exactly what a deployment's central server would hold. With --metrics
// (or VLM_METRICS=<path>) it also writes the obs registry trace: one
// snapshot per period, counters/spans keyed identically for every worker
// count, in json, prom, or csv (VLM_METRICS_FORMAT / --metrics-format).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.h"
#include "common/parallel.h"
#include "common/visited_mask.h"
#include "obs/clock.h"
#include "obs/export.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/stats_text.h"
#include "obs/trace.h"
#include "roadnet/assignment.h"
#include "roadnet/sioux_falls.h"
#include "roadnet/synthetic_city.h"
#include "roadnet/tntp_io.h"
#include "roadnet/trajectory.h"
#include "traffic/multi_rsu_workload.h"
#include "vcps/archive.h"
#include "vcps/simulation.h"

namespace {

using namespace vlm;

// Trajectory streams are sequential (one RNG stream), so for the sharded
// ingest we materialize them once (flat index list + offsets) and hand
// drive_vehicles an O(1) random-access itinerary provider. Ground-truth
// volumes are counted during materialization.
struct MaterializedTrips {
  std::vector<std::size_t> flat;
  std::vector<std::size_t> offsets{0};
  std::vector<std::uint64_t> volumes;

  std::uint64_t vehicle_count() const { return offsets.size() - 1; }

  vcps::ItineraryProvider provider() const {
    return [this](std::uint64_t v, std::vector<std::size_t>& positions) {
      positions.assign(flat.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                       flat.begin() +
                           static_cast<std::ptrdiff_t>(offsets[v + 1]));
    };
  }
};

MaterializedTrips materialize_network_workload(
    const roadnet::AssignmentResult& assignment, std::size_t node_count,
    std::uint64_t seed) {
  MaterializedTrips out;
  out.volumes.assign(node_count, 0);
  roadnet::TrajectorySampler sampler(assignment, seed);
  sampler.for_each_vehicle([&](std::span<const roadnet::NodeIndex> nodes) {
    for (roadnet::NodeIndex n : nodes) {
      out.flat.push_back(n);
      ++out.volumes[n];
    }
    out.offsets.push_back(out.flat.size());
  });
  return out;
}

// One period's registry state, captured right after end_period() so the
// exported series is cumulative (and therefore monotone) per metric.
struct PeriodTrace {
  std::uint64_t period = 0;
  double wall_seconds = 0.0;
  obs::Snapshot snapshot;
};

void write_metrics(const obs::ExportConfig& config, unsigned workers,
                   const std::vector<PeriodTrace>& traces) {
  if (config.path.empty() || traces.empty()) return;
  std::string content;
  switch (config.format) {
    case obs::ExportFormat::kJson: {
      content = "{\n \"tool\": \"vlm_simulate\",\n \"workers\": " +
                std::to_string(workers) + ",\n \"periods\": [";
      for (std::size_t i = 0; i < traces.size(); ++i) {
        char extra[96];
        std::snprintf(extra, sizeof extra,
                      "\"period\": %llu,\n  \"period_wall_seconds\": %.9g,",
                      static_cast<unsigned long long>(traces[i].period),
                      traces[i].wall_seconds);
        content += i == 0 ? "\n " : ",\n ";
        content += obs::to_json(traces[i].snapshot, extra, 2);
      }
      content += "\n ]\n}\n";
      break;
    }
    case obs::ExportFormat::kPrometheus:
      content = obs::to_prometheus_text(traces.back().snapshot);
      break;
    case obs::ExportFormat::kCsv:
      content = obs::csv_header();
      for (const PeriodTrace& trace : traces) {
        content += obs::to_csv_rows(trace.snapshot, trace.period);
      }
      break;
  }
  if (obs::write_text_file(config.path, content)) {
    std::printf("wrote %s metrics (%zu period(s)) to %s\n",
                obs::export_format_name(config.format), traces.size(),
                config.path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  common::ArgParser parser("vlm_simulate",
                           "simulate measurement periods and archive them");
  parser.add_string("network", "sioux-falls",
                    "'sioux-falls', 'grid', 'zipf', or 'tntp'");
  parser.add_string("net-file", "", "TNTP network file (network=tntp)");
  parser.add_string("trips-file", "", "TNTP trips file (network=tntp)");
  parser.add_string("out", "period.bin", "archive output path (last period)");
  parser.add_string("scheme", "vlm", "'vlm' or 'fbm'");
  parser.add_int("s", 2, "logical bit array size");
  parser.add_double("load-factor", 8.0, "VLM load factor f̄");
  parser.add_double("fbm-m", 1 << 17, "FBM fixed array size (power of two)");
  parser.add_double("scale", 1.0, "demand scale (network workloads)");
  parser.add_int("rows", 8, "grid rows (grid network)");
  parser.add_int("cols", 8, "grid cols (grid network)");
  parser.add_double("demand", 200'000, "grid total demand/day");
  parser.add_int("rsus", 32, "RSU count (zipf workload)");
  parser.add_int("vehicles", 200'000, "vehicle count (zipf workload)");
  parser.add_int("seed", 1, "simulation seed");
  parser.add_int("workers", 0, "ingest worker threads (0 = one per core)");
  parser.add_int("periods", 1, "measurement periods to simulate");
  parser.add_flag("decode-matrix", false,
                  "decode the full OD matrix after the last period and print "
                  "the decode stats (path steered by VLM_DECODE)");
  parser.add_string("metrics", "",
                    "write the metrics/phase trace here (VLM_METRICS when "
                    "empty)");
  parser.add_string("metrics-format", "",
                    "json|prom|csv (VLM_METRICS_FORMAT when empty; default "
                    "json)");
  parser.add_string("trace", "",
                    "write a Chrome Trace Event JSON flight-recorder timeline "
                    "here (VLM_TRACE when empty)");
  if (!parser.parse(argc, argv)) return 0;

  // Export destinations resolve before any fallible work so a run that
  // dies partway (bad flag value, unwritable archive) still flushes what
  // it measured: the guard writes a plain registry snapshot unless the
  // success path disarms it after the rich per-period write.
  const obs::ExportConfig metrics_config = obs::resolve_export_config(
      parser.get_string("metrics"), parser.get_string("metrics-format"));
  obs::MetricsExportGuard metrics_guard(metrics_config);
  const std::string trace_path =
      obs::trace::resolve_trace_path(parser.get_string("trace"));
  if (!trace_path.empty()) {
    obs::trace::set_thread_name("main");
    obs::trace::set_enabled(true);
  }

  try {
    const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));
    vcps::SimulationConfig config;
    config.seed = seed;
    // Scheme selection is one factory call; everything downstream
    // (server sizing, vehicle encoding, decode) is scheme-generic.
    core::SchemeOptions scheme_options;
    scheme_options.s = static_cast<std::uint32_t>(parser.get_int("s"));
    scheme_options.load_factor = parser.get_double("load-factor");
    scheme_options.array_size =
        static_cast<std::size_t>(parser.get_double("fbm-m"));
    config.server.scheme =
        core::make_scheme(parser.get_string("scheme"), scheme_options);

    const unsigned workers = common::resolve_worker_count(
        static_cast<unsigned>(std::max<std::int64_t>(0, parser.get_int("workers"))));
    const auto periods = static_cast<std::uint64_t>(
        std::max<std::int64_t>(1, parser.get_int("periods")));
    const std::string network = parser.get_string("network");

    // Workload setup happens entirely BEFORE the period loop, so the
    // per-period phase spans (period/begin + period/ingest +
    // period/close) tile the measured wall time of each period.
    std::unique_ptr<vcps::VcpsSimulation> sim;
    std::unique_ptr<traffic::MultiRsuWorkload> zipf_workload;
    MaterializedTrips trips_flat;
    vcps::ItineraryProvider itinerary;
    std::uint64_t vehicles_per_period = 0;
    if (network == "zipf") {
      traffic::MultiRsuConfig workload_config;
      workload_config.rsu_count =
          static_cast<std::size_t>(parser.get_int("rsus"));
      workload_config.vehicle_count =
          static_cast<std::uint64_t>(parser.get_int("vehicles"));
      workload_config.seed = seed;
      zipf_workload =
          std::make_unique<traffic::MultiRsuWorkload>(workload_config);
      zipf_workload->for_each_vehicle(
          [](std::uint64_t, std::span<const std::uint32_t>) {});
      std::vector<vcps::RsuSite> sites;
      for (std::size_t r = 0; r < workload_config.rsu_count; ++r) {
        sites.push_back(vcps::RsuSite{
            core::RsuId{r + 1},
            static_cast<double>(zipf_workload->node_volumes()[r])});
      }
      sim = std::make_unique<vcps::VcpsSimulation>(config, sites);
      // Zipf itineraries are splittable (pure per-vehicle RNG), so the
      // sharded engine generates them directly inside each worker.
      const std::size_t rsu_count = workload_config.rsu_count;
      const traffic::MultiRsuWorkload* workload = zipf_workload.get();
      itinerary = [workload, rsu_count](std::uint64_t v,
                                        std::vector<std::size_t>& positions) {
        thread_local common::VisitedMask visited(0);
        thread_local std::vector<std::uint32_t> rsus;
        if (visited.universe_size() != rsu_count) {
          visited = common::VisitedMask(rsu_count);
        }
        workload->itinerary(v, visited, rsus);
        positions.assign(rsus.begin(), rsus.end());
      };
      vehicles_per_period = workload_config.vehicle_count;
    } else {
      roadnet::Graph graph;
      roadnet::TripTable trips(2);
      if (network == "grid") {
        roadnet::SyntheticCityConfig city_config;
        city_config.rows = static_cast<std::uint32_t>(parser.get_int("rows"));
        city_config.cols = static_cast<std::uint32_t>(parser.get_int("cols"));
        city_config.total_demand = parser.get_double("demand");
        city_config.seed = seed;
        roadnet::SyntheticCity city = roadnet::make_synthetic_city(city_config);
        graph = std::move(city.graph);
        trips = std::move(city.trips);
      } else if (network == "sioux-falls") {
        graph = roadnet::sioux_falls_network();
        trips = roadnet::sioux_falls_trip_table();
      } else if (network == "tntp") {
        graph = roadnet::load_tntp_network(parser.get_string("net-file"));
        trips = roadnet::load_tntp_trips(parser.get_string("trips-file"));
      } else {
        std::fprintf(stderr, "unknown network '%s'\n", network.c_str());
        return 1;
      }
      if (parser.get_double("scale") != 1.0) {
        trips.scale(parser.get_double("scale"));
      }
      const auto assignment = roadnet::assign(graph, trips);
      std::vector<vcps::RsuSite> sites;
      for (roadnet::NodeIndex n = 0; n < graph.node_count(); ++n) {
        sites.push_back(vcps::RsuSite{core::RsuId{n + 1u},
                                      assignment.expected_node_volume(n)});
      }
      sim = std::make_unique<vcps::VcpsSimulation>(config, sites);
      trips_flat =
          materialize_network_workload(assignment, graph.node_count(), seed);
      itinerary = trips_flat.provider();
      vehicles_per_period = trips_flat.vehicle_count();
    }

    vcps::IngestStats ingest;
    std::vector<PeriodTrace> traces;
    traces.reserve(periods);
    for (std::uint64_t p = 0; p < periods; ++p) {
      const obs::Stopwatch period_wall;
      sim->begin_period();
      ingest = sim->drive_vehicles(vehicles_per_period, itinerary, workers);
      sim->end_period();
      PeriodTrace trace;
      trace.period = sim->current_period();
      trace.wall_seconds = period_wall.seconds();
      if (!metrics_config.path.empty()) {
        trace.snapshot = obs::MetricsRegistry::global().snapshot();
      }
      traces.push_back(std::move(trace));
    }

    // Archive every RSU's report for the final period.
    vcps::PeriodArchive archive;
    archive.period = sim->current_period();
    for (std::size_t r = 0; r < sim->rsu_count(); ++r) {
      archive.reports.push_back(sim->rsu(r).make_report(archive.period));
    }
    vcps::save_archive(parser.get_string("out"), archive);
    std::printf(
        "simulated %llu vehicles across %zu RSUs over %llu period(s); "
        "wrote %s\n",
        static_cast<unsigned long long>(sim->vehicles_driven()),
        sim->rsu_count(), static_cast<unsigned long long>(periods),
        parser.get_string("out").c_str());
    std::printf("%s", obs::format_ingest_stats(ingest).c_str());
    // Period-close estimator health for the final period (the decode
    // path below prints its own pair-level line via the pipeline stats).
    std::printf("%s",
                obs::health::format_health_summary(sim->last_health()).c_str());
    if (parser.get_flag("decode-matrix") && sim->rsu_count() >= 2) {
      // Decode the archived period's matrix through the server — the
      // same estimate path vlm_analyze runs offline — and surface the
      // decode phase stats (including the prune counters when
      // VLM_DECODE=pruned steers the path).
      const core::OdMatrix matrix = sim->server().estimate_matrix();
      std::printf("total estimated pairwise common traffic: %.0f\n",
                  matrix.total_estimated_common());
      std::printf(
          "%s", obs::format_decode_stats(sim->server().stats().decode).c_str());
    }
    std::printf("%s", obs::format_pipeline_stats(sim->scheme().name(),
                                                 sim->server().stats())
                          .c_str());
    if (!metrics_config.path.empty() && !traces.empty()) {
      // The optional decode (and its pair-health pass) ran after the last
      // period's snapshot was captured; refresh that snapshot so the
      // exported series carries the decode-side metrics. Snapshots are
      // cumulative, so the period spans and wall tiling are unchanged.
      traces.back().snapshot = obs::MetricsRegistry::global().snapshot();
    }
    write_metrics(metrics_config, ingest.workers, traces);
    metrics_guard.disarm();
    if (!trace_path.empty() &&
        obs::trace::write_chrome_trace(trace_path)) {
      std::printf("wrote chrome trace to %s\n", trace_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    // The flight recorder's whole point is the failing run: flush
    // whatever the rings hold. (metrics_guard flushes on unwind.)
    if (!trace_path.empty()) obs::trace::write_chrome_trace(trace_path);
    return 1;
  }
}
