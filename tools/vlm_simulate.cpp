// vlm_simulate — run one measurement period end to end and archive the
// RSU reports for offline analysis with vlm_analyze.
//
//   $ vlm_simulate --network sioux-falls --out period.bin
//   $ vlm_simulate --network grid --rows 8 --cols 8 --demand 300000 ...
//   $ vlm_simulate --network zipf --rsus 40 --vehicles 250000 ...
//
// The tool drives the FULL protocol (certificates, queries, replies,
// serialized reports) through vcps::VcpsSimulation, so the archive is
// exactly what a deployment's central server would hold.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.h"
#include "common/visited_mask.h"
#include "roadnet/assignment.h"
#include "roadnet/sioux_falls.h"
#include "roadnet/synthetic_city.h"
#include "roadnet/tntp_io.h"
#include "roadnet/trajectory.h"
#include "traffic/multi_rsu_workload.h"
#include "vcps/archive.h"
#include "vcps/simulation.h"

namespace {

using namespace vlm;

// Trajectory streams are sequential (one RNG stream), so for the sharded
// ingest we materialize them once (flat index list + offsets) and hand
// drive_vehicles an O(1) random-access itinerary provider. Ground-truth
// volumes are counted during materialization.
struct MaterializedTrips {
  std::vector<std::size_t> flat;
  std::vector<std::size_t> offsets{0};
  std::vector<std::uint64_t> volumes;

  std::uint64_t vehicle_count() const { return offsets.size() - 1; }

  vcps::ItineraryProvider provider() const {
    return [this](std::uint64_t v, std::vector<std::size_t>& positions) {
      positions.assign(flat.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                       flat.begin() +
                           static_cast<std::ptrdiff_t>(offsets[v + 1]));
    };
  }
};

MaterializedTrips materialize_network_workload(
    const roadnet::AssignmentResult& assignment, std::size_t node_count,
    std::uint64_t seed) {
  MaterializedTrips out;
  out.volumes.assign(node_count, 0);
  roadnet::TrajectorySampler sampler(assignment, seed);
  sampler.for_each_vehicle([&](std::span<const roadnet::NodeIndex> nodes) {
    for (roadnet::NodeIndex n : nodes) {
      out.flat.push_back(n);
      ++out.volumes[n];
    }
    out.offsets.push_back(out.flat.size());
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  common::ArgParser parser("vlm_simulate",
                           "simulate one measurement period and archive it");
  parser.add_string("network", "sioux-falls",
                    "'sioux-falls', 'grid', 'zipf', or 'tntp'");
  parser.add_string("net-file", "", "TNTP network file (network=tntp)");
  parser.add_string("trips-file", "", "TNTP trips file (network=tntp)");
  parser.add_string("out", "period.bin", "archive output path");
  parser.add_string("scheme", "vlm", "'vlm' or 'fbm'");
  parser.add_int("s", 2, "logical bit array size");
  parser.add_double("load-factor", 8.0, "VLM load factor f̄");
  parser.add_double("fbm-m", 1 << 17, "FBM fixed array size (power of two)");
  parser.add_double("scale", 1.0, "demand scale (network workloads)");
  parser.add_int("rows", 8, "grid rows (grid network)");
  parser.add_int("cols", 8, "grid cols (grid network)");
  parser.add_double("demand", 200'000, "grid total demand/day");
  parser.add_int("rsus", 32, "RSU count (zipf workload)");
  parser.add_int("vehicles", 200'000, "vehicle count (zipf workload)");
  parser.add_int("seed", 1, "simulation seed");
  parser.add_int("workers", 0, "ingest worker threads (0 = one per core)");
  if (!parser.parse(argc, argv)) return 0;

  try {
    const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));
    vcps::SimulationConfig config;
    config.seed = seed;
    // Scheme selection is one factory call; everything downstream
    // (server sizing, vehicle encoding, decode) is scheme-generic.
    core::SchemeOptions scheme_options;
    scheme_options.s = static_cast<std::uint32_t>(parser.get_int("s"));
    scheme_options.load_factor = parser.get_double("load-factor");
    scheme_options.array_size =
        static_cast<std::size_t>(parser.get_double("fbm-m"));
    config.server.scheme =
        core::make_scheme(parser.get_string("scheme"), scheme_options);

    const unsigned workers =
        static_cast<unsigned>(std::max<std::int64_t>(0, parser.get_int("workers")));
    const std::string network = parser.get_string("network");
    std::unique_ptr<vcps::VcpsSimulation> sim;
    vcps::IngestStats ingest;
    if (network == "zipf") {
      traffic::MultiRsuConfig workload_config;
      workload_config.rsu_count =
          static_cast<std::size_t>(parser.get_int("rsus"));
      workload_config.vehicle_count =
          static_cast<std::uint64_t>(parser.get_int("vehicles"));
      workload_config.seed = seed;
      traffic::MultiRsuWorkload workload(workload_config);
      workload.for_each_vehicle(
          [](std::uint64_t, std::span<const std::uint32_t>) {});
      std::vector<vcps::RsuSite> sites;
      for (std::size_t r = 0; r < workload_config.rsu_count; ++r) {
        sites.push_back(vcps::RsuSite{
            core::RsuId{r + 1},
            static_cast<double>(workload.node_volumes()[r])});
      }
      sim = std::make_unique<vcps::VcpsSimulation>(config, sites);
      sim->begin_period();
      // Zipf itineraries are splittable (pure per-vehicle RNG), so the
      // sharded engine generates them directly inside each worker.
      const std::size_t rsu_count = workload_config.rsu_count;
      ingest = sim->drive_vehicles(
          workload_config.vehicle_count,
          [&workload, rsu_count](std::uint64_t v,
                                 std::vector<std::size_t>& positions) {
            thread_local common::VisitedMask visited(0);
            thread_local std::vector<std::uint32_t> rsus;
            if (visited.universe_size() != rsu_count) {
              visited = common::VisitedMask(rsu_count);
            }
            workload.itinerary(v, visited, rsus);
            positions.assign(rsus.begin(), rsus.end());
          },
          workers);
    } else {
      roadnet::Graph graph;
      roadnet::TripTable trips(2);
      if (network == "grid") {
        roadnet::SyntheticCityConfig city_config;
        city_config.rows = static_cast<std::uint32_t>(parser.get_int("rows"));
        city_config.cols = static_cast<std::uint32_t>(parser.get_int("cols"));
        city_config.total_demand = parser.get_double("demand");
        city_config.seed = seed;
        roadnet::SyntheticCity city = roadnet::make_synthetic_city(city_config);
        graph = std::move(city.graph);
        trips = std::move(city.trips);
      } else if (network == "sioux-falls") {
        graph = roadnet::sioux_falls_network();
        trips = roadnet::sioux_falls_trip_table();
      } else if (network == "tntp") {
        graph = roadnet::load_tntp_network(parser.get_string("net-file"));
        trips = roadnet::load_tntp_trips(parser.get_string("trips-file"));
      } else {
        std::fprintf(stderr, "unknown network '%s'\n", network.c_str());
        return 1;
      }
      if (parser.get_double("scale") != 1.0) {
        trips.scale(parser.get_double("scale"));
      }
      const auto assignment = roadnet::assign(graph, trips);
      std::vector<vcps::RsuSite> sites;
      for (roadnet::NodeIndex n = 0; n < graph.node_count(); ++n) {
        sites.push_back(vcps::RsuSite{core::RsuId{n + 1u},
                                      assignment.expected_node_volume(n)});
      }
      sim = std::make_unique<vcps::VcpsSimulation>(config, sites);
      sim->begin_period();
      const MaterializedTrips trips_flat =
          materialize_network_workload(assignment, graph.node_count(), seed);
      ingest = sim->drive_vehicles(trips_flat.vehicle_count(),
                                   trips_flat.provider(), workers);
    }
    sim->end_period();

    // Archive every RSU's report.
    vcps::PeriodArchive archive;
    archive.period = sim->current_period();
    for (std::size_t r = 0; r < sim->rsu_count(); ++r) {
      archive.reports.push_back(sim->rsu(r).make_report(archive.period));
    }
    vcps::save_archive(parser.get_string("out"), archive);
    std::printf("simulated %llu vehicles across %zu RSUs; wrote %s\n",
                static_cast<unsigned long long>(sim->vehicles_driven()),
                sim->rsu_count(), parser.get_string("out").c_str());
    std::printf("ingest: %u workers, %s kernels, %.1f ms, %.0f vehicles/s\n",
                ingest.workers, ingest.kernel_isa, ingest.seconds * 1e3,
                ingest.vehicles_per_second());
    std::printf(
        "ingest pool: %llu dispatch(es) this run, %llu lifetime (threads "
        "reused, not respawned)\n",
        static_cast<unsigned long long>(ingest.pool_dispatches),
        static_cast<unsigned long long>(ingest.pool_lifetime_dispatches));
    const vcps::PipelineStats& stats = sim->server().stats();
    std::printf(
        "pipeline [%s]: %zu reports ingested, %zu quarantined, ingest "
        "%.1f ms\n",
        std::string(sim->scheme().name()).c_str(), stats.reports_ingested,
        stats.reports_quarantined, stats.ingest_seconds * 1e3);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
