// vlm_simulate — run one measurement period end to end and archive the
// RSU reports for offline analysis with vlm_analyze.
//
//   $ vlm_simulate --network sioux-falls --out period.bin
//   $ vlm_simulate --network grid --rows 8 --cols 8 --demand 300000 ...
//   $ vlm_simulate --network zipf --rsus 40 --vehicles 250000 ...
//
// The tool drives the FULL protocol (certificates, queries, replies,
// serialized reports) through vcps::VcpsSimulation, so the archive is
// exactly what a deployment's central server would hold.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.h"
#include "roadnet/assignment.h"
#include "roadnet/sioux_falls.h"
#include "roadnet/synthetic_city.h"
#include "roadnet/tntp_io.h"
#include "roadnet/trajectory.h"
#include "traffic/multi_rsu_workload.h"
#include "vcps/archive.h"
#include "vcps/simulation.h"

namespace {

using namespace vlm;

// Drives all vehicles of the chosen workload through the simulation and
// returns the per-site ground-truth volumes (for the printed summary).
std::vector<std::uint64_t> drive_network_workload(
    vcps::VcpsSimulation& sim, const roadnet::AssignmentResult& assignment,
    std::size_t node_count, std::uint64_t seed) {
  std::vector<std::uint64_t> volumes(node_count, 0);
  roadnet::TrajectorySampler sampler(assignment, seed);
  std::vector<std::size_t> positions;
  sampler.for_each_vehicle([&](std::span<const roadnet::NodeIndex> nodes) {
    positions.assign(nodes.begin(), nodes.end());
    for (roadnet::NodeIndex n : nodes) ++volumes[n];
    sim.drive_vehicle(positions);
  });
  return volumes;
}

}  // namespace

int main(int argc, char** argv) {
  common::ArgParser parser("vlm_simulate",
                           "simulate one measurement period and archive it");
  parser.add_string("network", "sioux-falls",
                    "'sioux-falls', 'grid', 'zipf', or 'tntp'");
  parser.add_string("net-file", "", "TNTP network file (network=tntp)");
  parser.add_string("trips-file", "", "TNTP trips file (network=tntp)");
  parser.add_string("out", "period.bin", "archive output path");
  parser.add_string("scheme", "vlm", "'vlm' or 'fbm'");
  parser.add_int("s", 2, "logical bit array size");
  parser.add_double("load-factor", 8.0, "VLM load factor f̄");
  parser.add_double("fbm-m", 1 << 17, "FBM fixed array size (power of two)");
  parser.add_double("scale", 1.0, "demand scale (network workloads)");
  parser.add_int("rows", 8, "grid rows (grid network)");
  parser.add_int("cols", 8, "grid cols (grid network)");
  parser.add_double("demand", 200'000, "grid total demand/day");
  parser.add_int("rsus", 32, "RSU count (zipf workload)");
  parser.add_int("vehicles", 200'000, "vehicle count (zipf workload)");
  parser.add_int("seed", 1, "simulation seed");
  if (!parser.parse(argc, argv)) return 0;

  try {
    const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));
    vcps::SimulationConfig config;
    config.seed = seed;
    // Scheme selection is one factory call; everything downstream
    // (server sizing, vehicle encoding, decode) is scheme-generic.
    core::SchemeOptions scheme_options;
    scheme_options.s = static_cast<std::uint32_t>(parser.get_int("s"));
    scheme_options.load_factor = parser.get_double("load-factor");
    scheme_options.array_size =
        static_cast<std::size_t>(parser.get_double("fbm-m"));
    config.server.scheme =
        core::make_scheme(parser.get_string("scheme"), scheme_options);

    const std::string network = parser.get_string("network");
    std::unique_ptr<vcps::VcpsSimulation> sim;
    if (network == "zipf") {
      traffic::MultiRsuConfig workload_config;
      workload_config.rsu_count =
          static_cast<std::size_t>(parser.get_int("rsus"));
      workload_config.vehicle_count =
          static_cast<std::uint64_t>(parser.get_int("vehicles"));
      workload_config.seed = seed;
      traffic::MultiRsuWorkload workload(workload_config);
      workload.for_each_vehicle(
          [](std::uint64_t, std::span<const std::uint32_t>) {});
      std::vector<vcps::RsuSite> sites;
      for (std::size_t r = 0; r < workload_config.rsu_count; ++r) {
        sites.push_back(vcps::RsuSite{
            core::RsuId{r + 1},
            static_cast<double>(workload.node_volumes()[r])});
      }
      sim = std::make_unique<vcps::VcpsSimulation>(config, sites);
      sim->begin_period();
      std::vector<std::size_t> positions;
      workload.for_each_vehicle(
          [&](std::uint64_t, std::span<const std::uint32_t> rsus) {
            positions.assign(rsus.begin(), rsus.end());
            sim->drive_vehicle(positions);
          });
    } else {
      roadnet::Graph graph;
      roadnet::TripTable trips(2);
      if (network == "grid") {
        roadnet::SyntheticCityConfig city_config;
        city_config.rows = static_cast<std::uint32_t>(parser.get_int("rows"));
        city_config.cols = static_cast<std::uint32_t>(parser.get_int("cols"));
        city_config.total_demand = parser.get_double("demand");
        city_config.seed = seed;
        roadnet::SyntheticCity city = roadnet::make_synthetic_city(city_config);
        graph = std::move(city.graph);
        trips = std::move(city.trips);
      } else if (network == "sioux-falls") {
        graph = roadnet::sioux_falls_network();
        trips = roadnet::sioux_falls_trip_table();
      } else if (network == "tntp") {
        graph = roadnet::load_tntp_network(parser.get_string("net-file"));
        trips = roadnet::load_tntp_trips(parser.get_string("trips-file"));
      } else {
        std::fprintf(stderr, "unknown network '%s'\n", network.c_str());
        return 1;
      }
      if (parser.get_double("scale") != 1.0) {
        trips.scale(parser.get_double("scale"));
      }
      const auto assignment = roadnet::assign(graph, trips);
      std::vector<vcps::RsuSite> sites;
      for (roadnet::NodeIndex n = 0; n < graph.node_count(); ++n) {
        sites.push_back(vcps::RsuSite{core::RsuId{n + 1u},
                                      assignment.expected_node_volume(n)});
      }
      sim = std::make_unique<vcps::VcpsSimulation>(config, sites);
      sim->begin_period();
      drive_network_workload(*sim, assignment, graph.node_count(), seed);
    }
    sim->end_period();

    // Archive every RSU's report.
    vcps::PeriodArchive archive;
    archive.period = sim->current_period();
    for (std::size_t r = 0; r < sim->rsu_count(); ++r) {
      archive.reports.push_back(sim->rsu(r).make_report(archive.period));
    }
    vcps::save_archive(parser.get_string("out"), archive);
    std::printf("simulated %llu vehicles across %zu RSUs; wrote %s\n",
                static_cast<unsigned long long>(sim->vehicles_driven()),
                sim->rsu_count(), parser.get_string("out").c_str());
    const vcps::PipelineStats& stats = sim->server().stats();
    std::printf(
        "pipeline [%s]: %zu reports ingested, %zu quarantined, ingest "
        "%.1f ms\n",
        std::string(sim->scheme().name()).c_str(), stats.reports_ingested,
        stats.reports_quarantined, stats.ingest_seconds * 1e3);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
